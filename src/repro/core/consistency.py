"""Replica-centric causal consistency checking (Definition 2 of the paper).

The checker validates an execution *after the fact*, purely from the
replicas' issue/apply traces:

* **Safety** — whenever a replica ``i`` applied an update ``u1`` on a
  register it stores, every update ``u2 ↪ u1`` on a register stored at ``i``
  had already been applied at ``i`` at that moment.
* **Liveness** — at quiescence (all messages delivered, all pending buffers
  drained), every update issued on register ``x`` has been applied at every
  replica that stores ``x``.

The happened-before relation is recomputed independently of the protocol
under test (:mod:`repro.core.causal`), so the checker catches protocols whose
metadata is too weak — which is exactly what the necessity experiments (E4)
rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .causal import HappenedBefore
from .errors import ConsistencyViolationError, LivenessViolationError
from .protocol import EventKind, ReplicaEvent, Update, UpdateId
from .registers import ReplicaId
from .share_graph import ShareGraph

# (Optional/Tuple are used in the checker's signature below.)


@dataclass(frozen=True)
class SafetyViolation:
    """One detected violation of the safety property.

    Replica ``replica_id`` applied ``applied`` while its causal predecessor
    ``missing`` (also on a register stored at the replica) had not been
    applied yet.
    """

    replica_id: ReplicaId
    applied: Update
    missing: Update
    position: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"replica {self.replica_id} applied {self.applied} at local position "
            f"{self.position} before its causal dependency {self.missing}"
        )


@dataclass(frozen=True)
class LivenessViolation:
    """One update that was never applied at a replica that stores its register."""

    replica_id: ReplicaId
    update: Update

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"update {self.update} was never applied at replica {self.replica_id} "
            f"although the replica stores register {self.update.register!r}"
        )


@dataclass
class ConsistencyReport:
    """The full verdict of the checker over one execution."""

    safety_violations: List[SafetyViolation] = field(default_factory=list)
    liveness_violations: List[LivenessViolation] = field(default_factory=list)
    checked_applications: int = 0
    checked_updates: int = 0

    @property
    def is_safe(self) -> bool:
        """``True`` iff no safety violation was found."""
        return not self.safety_violations

    @property
    def is_live(self) -> bool:
        """``True`` iff no liveness violation was found."""
        return not self.liveness_violations

    @property
    def is_causally_consistent(self) -> bool:
        """``True`` iff the execution satisfies Definition 2 end to end."""
        return self.is_safe and self.is_live

    def raise_on_violation(self) -> None:
        """Raise a descriptive exception if any violation was recorded."""
        if self.safety_violations:
            raise ConsistencyViolationError(
                f"{len(self.safety_violations)} safety violation(s); first: "
                f"{self.safety_violations[0]}",
                self.safety_violations,
            )
        if self.liveness_violations:
            raise LivenessViolationError(
                f"{len(self.liveness_violations)} liveness violation(s); first: "
                f"{self.liveness_violations[0]}",
                self.liveness_violations,
            )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"checked {self.checked_applications} applications of "
            f"{self.checked_updates} updates: "
            f"{len(self.safety_violations)} safety violation(s), "
            f"{len(self.liveness_violations)} liveness violation(s)"
        )


class ConsistencyChecker:
    """Validates executions against replica-centric causal consistency.

    Parameters
    ----------
    share_graph:
        The share graph of the system under test; used to know which
        registers each replica stores (safety is only required for registers
        in ``X_i``) and which replicas must eventually apply each update
        (liveness).
    epoch_history:
        Under dynamic membership (:mod:`repro.sim.reconfig`), the ordered
        ``(start time, share graph)`` sequence of configurations the run
        went through.  Safety is then judged per event against the
        configuration active at the event's ``sim_time`` (a replica's
        ``X_i`` may grow and shrink across epochs, and replicas may exist
        in only some epochs); liveness is judged against the *final*
        configuration — every update on register ``x`` must eventually be
        applied at every replica that stores ``x`` when the run ends, which
        is exactly what obliges joiners to receive pre-join history via
        state transfer and releases leavers from post-leave obligations.
        ``None`` (the default) means a single static configuration:
        ``share_graph`` governs everything, as in the paper.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        epoch_history: Optional[Sequence[Tuple[float, ShareGraph]]] = None,
    ) -> None:
        self.share_graph = share_graph
        self.epoch_history: Tuple[Tuple[float, ShareGraph], ...] = (
            tuple(epoch_history) if epoch_history else ((0.0, share_graph),)
        )
        self._epoch_starts = [start for start, _ in self.epoch_history]
        self._stored_cache: Dict[Tuple[ReplicaId, int], Optional[frozenset]] = {}

    def _stored_in_epoch(self, replica_id: ReplicaId,
                         index: int) -> Optional[frozenset]:
        cached = self._stored_cache.get((replica_id, index))
        if cached is None and (replica_id, index) not in self._stored_cache:
            graph = self.epoch_history[index][1]
            cached = (
                graph.registers_at(replica_id)
                if replica_id in graph.placement
                else None
            )
            self._stored_cache[(replica_id, index)] = cached
        return cached

    def _stored_at(self, replica_id: ReplicaId, time: float) -> Optional[frozenset]:
        """``X_i`` in the configuration governing an event at ``time``.

        An event stamped *exactly* at an epoch boundary belongs ambiguously
        to both sides — the commit flush applies the old epoch's tail at
        the commit instant.  For a replica present in both configurations,
        such events are judged against the intersection of the two ``X_i``
        sets: a register gained at the boundary imposes no obligation on
        old-epoch applies (its history is still in the bootstrap stream),
        and a register dropped imposes none either.  Away from boundaries
        the scan walks from the latest epoch whose start is ≤ ``time``
        backwards to the first configuration that contains the replica (a
        leaver's trace events predate its removal).  Returns ``None`` when
        no governing configuration knows the replica at all.
        """
        index = bisect_right(self._epoch_starts, time) - 1
        if 0 < index < len(self.epoch_history) and self._epoch_starts[index] == time:
            newer = self._stored_in_epoch(replica_id, index)
            older = None
            j = index - 1
            while j >= 0 and older is None:
                older = self._stored_in_epoch(replica_id, j)
                j -= 1
            if newer is not None and older is not None:
                return newer & older
            return newer if newer is not None else older
        while index >= 0:
            stored = self._stored_in_epoch(replica_id, index)
            if stored is not None:
                return stored
            index -= 1
        return None

    @property
    def _final_graph(self) -> ShareGraph:
        return self.epoch_history[-1][1]

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def check(
        self,
        events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
        check_liveness: bool = True,
        extra_happened_before: Optional[Sequence[Tuple[UpdateId, UpdateId]]] = None,
    ) -> ConsistencyReport:
        """Check a complete execution given each replica's local event trace.

        ``extra_happened_before`` adds direct ``↪`` edges beyond those implied
        by the replica traces.  The client–server architecture uses this to
        inject the dependencies a client propagates by accessing several
        replicas (condition (ii) of Definition 25's ``↪'``).
        """
        relation = HappenedBefore.from_events(events_by_replica)
        if extra_happened_before:
            for u1, u2 in extra_happened_before:
                if u1 != u2:
                    relation.direct_edges.add((u1, u2))
            relation._closure = None
        report = ConsistencyReport()
        report.checked_updates = len(relation.updates)

        for replica_id, events in events_by_replica.items():
            self._check_replica_safety(replica_id, events, relation, report)

        if check_liveness:
            self._check_liveness(events_by_replica, relation, report)
        return report

    # ------------------------------------------------------------------
    # Safety
    # ------------------------------------------------------------------
    def _check_replica_safety(
        self,
        replica_id: ReplicaId,
        events: Sequence[ReplicaEvent],
        relation: HappenedBefore,
        report: ConsistencyReport,
    ) -> None:
        static = len(self.epoch_history) == 1
        stored = self.share_graph.registers_at(replica_id) if static else frozenset()
        applied_so_far: set = set()
        for position, event in enumerate(events):
            if event.kind not in (EventKind.ISSUE, EventKind.APPLY):
                continue
            update = event.update
            if update is None:
                continue
            report.checked_applications += 1
            if not static:
                stored = self._stored_at(replica_id, event.sim_time) or frozenset()
            # Safety only constrains applications of updates to registers the
            # replica stores; metadata-only applications (dummy registers) are
            # exempt from the "u1 for register x in X_i" premise but still
            # extend the applied set used for later checks.
            if update.register in stored:
                for missing_uid in relation.predecessors(update.uid):
                    missing = relation.updates[missing_uid]
                    if missing.register not in stored:
                        continue
                    if missing_uid not in applied_so_far:
                        report.safety_violations.append(
                            SafetyViolation(
                                replica_id=replica_id,
                                applied=update,
                                missing=missing,
                                position=position,
                            )
                        )
            applied_so_far.add(update.uid)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def _check_liveness(
        self,
        events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
        relation: HappenedBefore,
        report: ConsistencyReport,
    ) -> None:
        applied_at: Dict[ReplicaId, set] = {}
        for replica_id, events in events_by_replica.items():
            applied_at[replica_id] = {
                e.update.uid
                for e in events
                if e.kind in (EventKind.ISSUE, EventKind.APPLY) and e.update is not None
            }
        for update in relation.all_updates():
            try:
                owners = self._final_graph.replicas_storing(update.register)
            except Exception:
                # Registers unknown to the (final) share graph — virtual
                # registers introduced by optimizations, or registers that
                # left the system with their last replica — impose no
                # liveness obligation.
                continue
            for replica_id in owners:
                if replica_id not in events_by_replica:
                    continue
                if update.uid not in applied_at.get(replica_id, set()):
                    report.liveness_violations.append(
                        LivenessViolation(replica_id=replica_id, update=update)
                    )


def check_execution(
    share_graph: ShareGraph,
    events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
    check_liveness: bool = True,
) -> ConsistencyReport:
    """Convenience wrapper: build a checker and validate one execution."""
    return ConsistencyChecker(share_graph).check(
        events_by_replica, check_liveness=check_liveness
    )
