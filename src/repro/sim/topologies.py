"""Register placements / share-graph topologies used throughout the paper.

Provides generators for the standard topology families analysed in Section 4
(trees, cycles, cliques / full replication), random partial replication, and
the exact worked examples of the paper:

* :func:`figure3_placement` — the 4-replica example of Figure 3
  (``X_1 = {x}``, ``X_2 = {x, y}``, ``X_3 = {y, z}``, ``X_4 = {z}``);
* :func:`figure5_placement` — the 4-replica example of Figure 5
  (``X_1 = {a, y, w}``, ``X_2 = {b, x, y}``, ``X_3 = {c, x, z}``,
  ``X_4 = {d, y, z, w}``) whose timestamp graph for replica 1 contains
  ``e_43`` but not ``e_34``;
* :func:`triangle_placement` — the smallest loop topology (three replicas
  pairwise sharing one register each), the minimal example on which
  incident-only tracking is provably unsafe;
* :func:`counterexample1_placement` / :func:`counterexample2_placement` — the
  share graphs of Figures 6/8a and 8b used to correct Hélary–Milani;
* :func:`ring_placement` — the R-replica ring of Figure 13 used by the
  ring-breaking optimization.

Every generator returns a :class:`~repro.core.registers.RegisterPlacement`;
wrap it in :class:`~repro.core.share_graph.ShareGraph` to get the graph.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ConfigurationError
from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..core.share_graph import ShareGraph


# ----------------------------------------------------------------------
# The paper's worked examples
# ----------------------------------------------------------------------

def figure3_placement() -> RegisterPlacement:
    """The Figure 3 example: a path-shaped share graph over four replicas."""
    return RegisterPlacement.from_dict(
        {1: {"x"}, 2: {"x", "y"}, 3: {"y", "z"}, 4: {"z"}}
    )


def figure5_placement() -> RegisterPlacement:
    """The Figure 5 example used to illustrate ``(i, e_jk)``-loops.

    ``X_1 = {a, y, w}``, ``X_2 = {b, x, y}``, ``X_3 = {c, x, z}``,
    ``X_4 = {d, y, z, w}``.  The paper shows ``(1, 2, 3, 4)`` is a
    ``(1, e_43)``-loop and a ``(1, e_32)``-loop while ``(1, 4, 3, 2)`` is
    neither a ``(1, e_34)``- nor a ``(1, e_23)``-loop, so ``G_1`` contains
    ``e_43`` but not ``e_34``.
    """
    return RegisterPlacement.from_dict(
        {
            1: {"a", "y", "w"},
            2: {"b", "x", "y"},
            3: {"c", "x", "z"},
            4: {"d", "y", "z", "w"},
        }
    )


def triangle_placement() -> RegisterPlacement:
    """Three replicas pairwise sharing one register each (a 3-cycle).

    The smallest topology on which every replica must track *all* six
    directed edges; tracking only incident edges loses causality.
    """
    return RegisterPlacement.from_dict(
        {1: {"x", "z"}, 2: {"x", "y"}, 3: {"y", "z"}}
    )


def counterexample1_placement() -> RegisterPlacement:
    """The share graph of Figures 6 / 8a (Hélary–Milani counterexample 1).

    Seven replicas ``i, a1, a2, k, j, b1, b2`` arranged on a ring
    ``j - b1 - b2 - i - a1 - a2 - k - j``; ``j`` and ``k`` share ``x``;
    ``b1, b2, a1`` share ``y``; ``b2, a1, a2`` share ``z``; all other ring
    edges carry unique registers.  Replica ids: ``i=1, b2=2, b1=3, j=4,
    k=5, a2=6, a1=7``.

    The ring is a minimal x-hoop under the original Hélary–Milani
    definition, yet Theorem 8 shows replica ``i`` need not track ``e_jk`` or
    ``e_kj`` — the two y-labelled chords make the information flow through
    ``i`` unnecessary.
    """
    # q_* are the unique registers on the remaining ring edges.
    return RegisterPlacement.from_dict(
        {
            COUNTEREXAMPLE_IDS["i"]: {"q_b2i", "q_ia1"},
            COUNTEREXAMPLE_IDS["b2"]: {"y", "z", "q_b2i"},
            COUNTEREXAMPLE_IDS["b1"]: {"y", "q_jb1"},
            COUNTEREXAMPLE_IDS["j"]: {"x", "q_jb1"},
            COUNTEREXAMPLE_IDS["k"]: {"x", "q_a2k"},
            COUNTEREXAMPLE_IDS["a2"]: {"z", "q_a2k"},
            COUNTEREXAMPLE_IDS["a1"]: {"y", "z", "q_ia1"},
        }
    )


def counterexample2_placement() -> RegisterPlacement:
    """The share graph of Figure 8b (Hélary–Milani counterexample 2).

    Same ring as counterexample 1 but only ``y`` is shared three ways
    (``b1, b2, a1``); the ``a1 - a2`` edge carries a unique register.  Under
    the *modified* minimal-hoop definition the ring is not a minimal x-hoop,
    which would waive tracking at ``i`` — yet Theorem 8 requires ``i`` to
    track ``e_kj`` (updates to ``x`` by ``k``).
    """
    return RegisterPlacement.from_dict(
        {
            COUNTEREXAMPLE_IDS["i"]: {"q_b2i", "q_ia1"},
            COUNTEREXAMPLE_IDS["b2"]: {"y", "q_b2i"},
            COUNTEREXAMPLE_IDS["b1"]: {"y", "q_jb1"},
            COUNTEREXAMPLE_IDS["j"]: {"x", "q_jb1"},
            COUNTEREXAMPLE_IDS["k"]: {"x", "q_a2k"},
            COUNTEREXAMPLE_IDS["a2"]: {"q_a1a2", "q_a2k"},
            COUNTEREXAMPLE_IDS["a1"]: {"y", "q_a1a2", "q_ia1"},
        }
    )


#: Mapping from the paper's replica names to the integer ids used by the
#: counterexample placements.
COUNTEREXAMPLE_IDS: Dict[str, ReplicaId] = {
    "i": 1,
    "b2": 2,
    "b1": 3,
    "j": 4,
    "k": 5,
    "a2": 6,
    "a1": 7,
}


# ----------------------------------------------------------------------
# Topology families (Section 4 closed forms and Appendix D)
# ----------------------------------------------------------------------

def ring_placement(num_replicas: int) -> RegisterPlacement:
    """A ring of ``num_replicas`` replicas, one unique register per ring edge.

    This is the Figure 13 topology: replica ``r`` shares register ``ring_r``
    with its clockwise neighbour and ``ring_{r-1}`` with its anticlockwise
    neighbour, and nothing with anyone else.
    """
    if num_replicas < 3:
        raise ConfigurationError("a ring needs at least 3 replicas")
    stores: Dict[ReplicaId, Set[Register]] = {r: set() for r in range(1, num_replicas + 1)}
    for r in range(1, num_replicas + 1):
        nxt = r % num_replicas + 1
        register = f"ring_{r}"
        stores[r].add(register)
        stores[nxt].add(register)
    return RegisterPlacement.from_dict(stores)


def path_placement(num_replicas: int) -> RegisterPlacement:
    """A path (the simplest tree): one unique register per consecutive pair."""
    if num_replicas < 2:
        raise ConfigurationError("a path needs at least 2 replicas")
    stores: Dict[ReplicaId, Set[Register]] = {r: set() for r in range(1, num_replicas + 1)}
    for r in range(1, num_replicas):
        register = f"path_{r}"
        stores[r].add(register)
        stores[r + 1].add(register)
    return RegisterPlacement.from_dict(stores)


def star_placement(num_leaves: int) -> RegisterPlacement:
    """A star: replica 1 is the hub sharing one unique register with each leaf."""
    if num_leaves < 1:
        raise ConfigurationError("a star needs at least 1 leaf")
    stores: Dict[ReplicaId, Set[Register]] = {1: set()}
    for leaf in range(2, num_leaves + 2):
        register = f"spoke_{leaf}"
        stores[1].add(register)
        stores[leaf] = {register}
    return RegisterPlacement.from_dict(stores)


def tree_placement(num_replicas: int, branching: int = 2) -> RegisterPlacement:
    """A balanced tree: each parent/child pair shares one unique register.

    Replica 1 is the root; replica ``r`` has parent ``(r - 2) // branching + 1``.
    """
    if num_replicas < 2:
        raise ConfigurationError("a tree needs at least 2 replicas")
    if branching < 1:
        raise ConfigurationError("branching factor must be positive")
    stores: Dict[ReplicaId, Set[Register]] = {r: set() for r in range(1, num_replicas + 1)}
    for child in range(2, num_replicas + 1):
        parent = (child - 2) // branching + 1
        register = f"tree_{parent}_{child}"
        stores[parent].add(register)
        stores[child].add(register)
    return RegisterPlacement.from_dict(stores)


def clique_placement(num_replicas: int, shared_register: str = "g") -> RegisterPlacement:
    """Full replication: every replica stores the same single register set.

    With every edge sharing the identical register, the share graph is a
    clique and the edge-indexed timestamp compresses to the classical
    length-``R`` vector (Section 5).
    """
    if num_replicas < 2:
        raise ConfigurationError("a clique needs at least 2 replicas")
    return RegisterPlacement.full_replication(
        range(1, num_replicas + 1), {shared_register}
    )


def pairwise_clique_placement(num_replicas: int) -> RegisterPlacement:
    """A clique where each replica *pair* shares its own unique register.

    Unlike :func:`clique_placement`, the edge counters here are genuinely
    independent, so no compression is possible — the worst case for
    partial-replication metadata.
    """
    if num_replicas < 2:
        raise ConfigurationError("a clique needs at least 2 replicas")
    stores: Dict[ReplicaId, Set[Register]] = {r: set() for r in range(1, num_replicas + 1)}
    for a in range(1, num_replicas + 1):
        for b in range(a + 1, num_replicas + 1):
            register = f"pair_{a}_{b}"
            stores[a].add(register)
            stores[b].add(register)
    return RegisterPlacement.from_dict(stores)


def grid_placement(rows: int, cols: int) -> RegisterPlacement:
    """A ``rows × cols`` grid; each grid edge carries a unique register."""
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid dimensions must be positive")
    def rid(r: int, c: int) -> int:
        return r * cols + c + 1

    stores: Dict[ReplicaId, Set[Register]] = {
        rid(r, c): set() for r in range(rows) for c in range(cols)
    }
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                register = f"grid_h_{r}_{c}"
                stores[rid(r, c)].add(register)
                stores[rid(r, c + 1)].add(register)
            if r + 1 < rows:
                register = f"grid_v_{r}_{c}"
                stores[rid(r, c)].add(register)
                stores[rid(r + 1, c)].add(register)
    return RegisterPlacement.from_dict(stores)


def random_partial_placement(
    num_replicas: int,
    num_registers: int,
    replication_factor: int = 2,
    seed: int = 0,
    ensure_connected: bool = True,
) -> RegisterPlacement:
    """A random partial replication: each register is placed at ``replication_factor`` replicas.

    Parameters
    ----------
    ensure_connected:
        When ``True`` (default) extra "link" registers are added along a
        random spanning order so that the resulting share graph is connected,
        matching the assumption made by the paper's proofs.
    """
    if replication_factor < 1 or replication_factor > num_replicas:
        raise ConfigurationError(
            "replication_factor must be between 1 and the number of replicas"
        )
    rng = random.Random(seed)
    replica_ids = list(range(1, num_replicas + 1))
    stores: Dict[ReplicaId, Set[Register]] = {r: set() for r in replica_ids}
    for idx in range(num_registers):
        owners = rng.sample(replica_ids, replication_factor)
        for owner in owners:
            stores[owner].add(f"r{idx}")
    if ensure_connected:
        order = replica_ids[:]
        rng.shuffle(order)
        for a, b in zip(order[:-1], order[1:]):
            graph = ShareGraph.from_dict(stores)
            if not graph.has_edge(a, b) and not _connected(stores, a, b):
                register = f"link_{a}_{b}"
                stores[a].add(register)
                stores[b].add(register)
    return RegisterPlacement.from_dict(stores)


def _connected(stores: Dict[ReplicaId, Set[Register]], a: ReplicaId, b: ReplicaId) -> bool:
    graph = ShareGraph.from_dict(stores)
    components = graph.connected_components()
    for component in components:
        if a in component and b in component:
            return True
    return False


def geo_replication_placement(
    num_datacenters: int = 3,
    shards_per_dc: int = 4,
    global_registers: int = 2,
) -> RegisterPlacement:
    """A geo-replication-style placement: local shards plus a few global registers.

    Each datacenter (replica) stores its own shard registers; consecutive
    datacenters share a "regional" register, and every datacenter stores the
    global registers.  This is the storage-efficiency scenario motivating
    partial replication in the introduction.
    """
    if num_datacenters < 2:
        raise ConfigurationError("need at least two datacenters")
    stores: Dict[ReplicaId, Set[Register]] = {}
    for dc in range(1, num_datacenters + 1):
        local = {f"dc{dc}_shard{s}" for s in range(shards_per_dc)}
        stores[dc] = local
    for dc in range(1, num_datacenters):
        register = f"regional_{dc}_{dc + 1}"
        stores[dc].add(register)
        stores[dc + 1].add(register)
    for g in range(global_registers):
        register = f"global_{g}"
        for dc in stores:
            stores[dc].add(register)
    return RegisterPlacement.from_dict(stores)
