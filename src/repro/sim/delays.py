"""Message-delay models for the discrete-event network simulator.

The paper assumes an asynchronous system: messages are reliable but may be
delayed arbitrarily and delivered out of order (channels are explicitly *not*
FIFO).  A delay model decides, per message, how long the network holds it.
Because the simulator delivers strictly in timestamp order, choosing delays
is equivalent to choosing an adversarial delivery schedule — which is exactly
what the necessity proofs of Theorem 8 and the lower-bound constructions of
Appendix C require.

All models are deterministic functions of their parameters and the seeded
random generator handed to them, so every simulation is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..core.protocol import UpdateMessage
from ..core.registers import ReplicaId

#: A channel is identified by the ordered pair (sender, destination).
Channel = Tuple[ReplicaId, ReplicaId]


class DelayModel:
    """Base class: assigns a latency (and a channel fate) to each message."""

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        """Latency (in simulated time units) for ``message``."""
        raise NotImplementedError

    def fate(self, message: UpdateMessage, rng: random.Random) -> int:
        """Number of copies of ``message`` the channel puts on the wire.

        The default channel is reliable and exactly-once: one copy, no
        randomness consumed.  The fault-injection wrappers
        (:class:`LossyDelay`, :class:`DuplicatingDelay`) override this to
        drop (0 copies) or duplicate (2+) with seeded probability; each copy
        then samples its own delay.  A transport facing a lossy fate must
        run the ack/resend reliability layer
        (:meth:`~repro.sim.engine.Transport.enable_reliability`) or dropped
        messages are lost for good.
        """
        return 1

    def channel_base(self, channel: Channel) -> float:
        """The jitter-free base latency this model assigns to ``channel``.

        Heterogeneous models (:class:`PerChannelDelay`,
        :class:`~repro.topo.delays.LatencyDelayModel`) answer per channel;
        scalar models answer their constant (or mean).  Wrappers such as
        :class:`LossyDelay` / :class:`DuplicatingDelay` forward to the
        model they wrap, so per-channel structure survives composition —
        callers (placement scoring, experiment tables) can interrogate a
        fully stacked model without unwrapping it by hand.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a per-channel base latency"
        )


@dataclass
class FixedDelay(DelayModel):
    """Every message takes exactly ``latency`` time units."""

    latency: float = 1.0

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        return self.latency

    def channel_base(self, channel: Channel) -> float:
        return self.latency


@dataclass
class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high]`` — the default model.

    With a wide interval this generates heavy reordering between channels and
    within a channel (non-FIFO), which is the regime partial-replication
    causality tracking must survive.
    """

    low: float = 1.0
    high: float = 10.0

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def channel_base(self, channel: Channel) -> float:
        return (self.low + self.high) / 2.0


@dataclass
class PerChannelDelay(DelayModel):
    """A distinct base latency per channel plus bounded jitter.

    Useful for geo-replication-style scenarios where some replica pairs are
    "close" and others "far", and for constructing the loosely synchronous
    regime of Appendix D (long paths slower than single hops).
    """

    base: Mapping[Channel, float] = field(default_factory=dict)
    default: float = 1.0
    jitter: float = 0.0

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        channel = (message.sender, message.destination)
        latency = self.base.get(channel, self.default)
        if self.jitter:
            latency += rng.uniform(0.0, self.jitter)
        return latency

    def channel_base(self, channel: Channel) -> float:
        return self.base.get(channel, self.default)


@dataclass
class AdversarialDelay(DelayModel):
    """Arbitrary per-message delays chosen by a user-supplied function.

    The callable receives the message and must return its latency.  This is
    the hook the necessity experiments use to realise the executions of the
    Theorem 8 proof (e.g. "hold the direct update from r1 to ls until after
    the long dependency chain has arrived").
    """

    chooser: Callable[[UpdateMessage], float] = lambda message: 1.0

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        return float(self.chooser(message))


@dataclass
class ChannelFateWrapper(DelayModel):
    """Base for wrappers perturbing the channel fate of selected channels.

    Delays delegate to the wrapped model unchanged; the fate decision draws
    from the same seeded generator, so a wrapped run is exactly as
    reproducible as its inner model (same seed → same delay *and* fate
    sequence).  ``channels`` restricts the perturbation to specific
    directed channels (``None`` = every channel); subclasses implement just
    :meth:`_transform`.
    """

    inner: DelayModel = field(default_factory=UniformDelay)
    channels: Optional[frozenset] = None

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        return self.inner.delay(message, rng)

    def channel_base(self, channel: Channel) -> float:
        # Forward rather than assume a scalar: the wrapped model may be
        # per-channel heterogeneous (PerChannelDelay, LatencyDelayModel).
        return self.inner.channel_base(channel)

    def fate(self, message: UpdateMessage, rng: random.Random) -> int:
        copies = self.inner.fate(message, rng)
        if self.channels is not None:
            if (message.sender, message.destination) not in self.channels:
                return copies
        return self._transform(copies, rng)

    def _transform(self, copies: int, rng: random.Random) -> int:
        """Perturb the inner fate (number of copies) for an in-scope message."""
        raise NotImplementedError


@dataclass
class LossyDelay(ChannelFateWrapper):
    """Wrapper dropping each message with seeded probability."""

    drop_probability: float = 0.1

    def _transform(self, copies: int, rng: random.Random) -> int:
        return 0 if rng.random() < self.drop_probability else copies


@dataclass
class DuplicatingDelay(ChannelFateWrapper):
    """Wrapper injecting a duplicate copy with seeded probability.

    Stacks with :class:`LossyDelay` in either order (a dropped message has
    no copies to duplicate; a duplicated message may lose one copy).  Each
    copy samples its own delay, so duplicates reorder freely — the regime
    the protocol layer's duplicate suppression must survive.
    """

    duplicate_probability: float = 0.1

    def _transform(self, copies: int, rng: random.Random) -> int:
        if copies > 0 and rng.random() < self.duplicate_probability:
            return copies + 1
        return copies


@dataclass
class SlowChannelDelay(DelayModel):
    """Uniform delays, except selected channels are slowed by a large factor.

    A compact way to build "the message on this edge arrives last" schedules
    without writing a custom chooser.
    """

    slow_channels: frozenset = frozenset()
    low: float = 1.0
    high: float = 2.0
    slow_factor: float = 100.0

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        latency = rng.uniform(self.low, self.high)
        if (message.sender, message.destination) in self.slow_channels:
            latency *= self.slow_factor
        return latency
