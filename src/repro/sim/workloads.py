"""Workload generation and execution: closed-loop replay and open-loop arrivals.

A *workload* is a finite sequence of client operations (writes and reads)
addressed to specific replicas.  Workloads are plain data, so the same
workload can be replayed against different protocols (the paper's algorithm
and every baseline) **and against either architecture** (the peer-to-peer
:class:`~repro.sim.cluster.Cluster` or the client–server
:class:`~repro.clientserver.cluster.ClientServerCluster` with co-located
clients) under the same network seed — the comparison mode used by the
metadata-overhead and optimization experiments.

Closed-loop generators (the caller decides when each operation happens):

* :func:`uniform_workload` — every replica writes its own registers at random;
* :func:`hotspot_workload` — a skewed register popularity distribution;
* :func:`causal_chain_workload` — deliberate cross-replica dependency chains
  (write at one replica, read/acknowledge at a sharer, write there, …), the
  access pattern that exercises causality tracking hardest;
* :func:`read_heavy_workload` — mostly reads with occasional writes.

Open-loop generators (operations arrive at simulated timestamps drawn from
an arrival process, independent of the system's progress — the load model of
production client traffic):

* :func:`poisson_workload` — memoryless arrivals at a fixed mean rate;
* :func:`bursty_workload` — alternating high-rate bursts and quiet gaps.

Run closed-loop workloads with :func:`run_workload` and open-loop workloads
with :func:`run_open_loop`; both drive any
:class:`~repro.sim.engine.SimulationHost` and report through the unified
metrics pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from .engine import LatencySummary, QueueDepthStats, SimulationHost, throughput_timeline


@dataclass(frozen=True)
class Operation:
    """One client operation addressed to a replica.

    Attributes
    ----------
    kind:
        ``"write"`` or ``"read"``.
    replica_id:
        The replica whose co-located client issues the operation.
    register:
        The target register (always stored at the replica).
    value:
        The value written (``None`` for reads).
    """

    kind: str
    replica_id: ReplicaId
    register: Register
    value: Any = None


@dataclass(frozen=True)
class Workload:
    """A named, replayable sequence of operations."""

    name: str
    operations: Tuple[Operation, ...]

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def write_count(self) -> int:
        """Number of write operations."""
        return sum(1 for op in self.operations if op.kind == "write")

    @property
    def read_count(self) -> int:
        """Number of read operations."""
        return sum(1 for op in self.operations if op.kind == "read")


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def _writable_registers(graph: ShareGraph, replica_id: ReplicaId) -> List[Register]:
    return sorted(graph.registers_at(replica_id))


def uniform_workload(
    graph: ShareGraph,
    num_operations: int,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> Workload:
    """Operations spread uniformly over replicas and their local registers."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    operations: List[Operation] = []
    for index in range(num_operations):
        replica_id = rng.choice(replica_ids)
        registers = _writable_registers(graph, replica_id)
        register = rng.choice(registers)
        if rng.random() < write_fraction:
            operations.append(
                Operation("write", replica_id, register, value=f"v{index}")
            )
        else:
            operations.append(Operation("read", replica_id, register))
    return Workload("uniform", tuple(operations))


def hotspot_workload(
    graph: ShareGraph,
    num_operations: int,
    hot_fraction: float = 0.8,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> Workload:
    """A skewed workload: ``hot_fraction`` of operations hit one popular register per replica."""
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    hot_register = {
        rid: sorted(graph.registers_at(rid))[0] for rid in replica_ids
    }
    operations: List[Operation] = []
    for index in range(num_operations):
        replica_id = rng.choice(replica_ids)
        registers = _writable_registers(graph, replica_id)
        if rng.random() < hot_fraction:
            register = hot_register[replica_id]
        else:
            register = rng.choice(registers)
        if rng.random() < write_fraction:
            operations.append(
                Operation("write", replica_id, register, value=f"h{index}")
            )
        else:
            operations.append(Operation("read", replica_id, register))
    return Workload("hotspot", tuple(operations))


def causal_chain_workload(
    graph: ShareGraph,
    num_chains: int,
    chain_length: int = 4,
    seed: int = 0,
) -> Workload:
    """Chains of writes that hop across share-graph neighbours.

    Each chain starts at a random replica and repeatedly: writes a register
    shared with a random neighbour, then continues from that neighbour.  The
    resulting updates form long ``↪`` chains spanning many replicas — the
    pattern that makes causality tracking under partial replication hard.
    """
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    operations: List[Operation] = []
    value = 0
    for _ in range(num_chains):
        current = rng.choice(replica_ids)
        for _ in range(chain_length):
            neighbours = list(graph.neighbors(current))
            if not neighbours:
                break
            nxt = rng.choice(neighbours)
            shared = sorted(graph.shared_registers(current, nxt))
            register = rng.choice(shared)
            operations.append(Operation("write", current, register, value=f"c{value}"))
            value += 1
            operations.append(Operation("read", nxt, register))
            current = nxt
    return Workload("causal_chain", tuple(operations))


def read_heavy_workload(
    graph: ShareGraph,
    num_operations: int,
    seed: int = 0,
) -> Workload:
    """A 90%-read workload (the common case for geo-replicated stores)."""
    return uniform_workload(graph, num_operations, write_fraction=0.1, seed=seed)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class WorkloadResult:
    """Everything measured while replaying a workload on a cluster."""

    workload: Workload
    steps: int
    consistent: bool
    safety_violations: int
    liveness_violations: int
    messages_sent: int
    metadata_counters_sent: int
    mean_apply_latency: float
    metadata_sizes: Dict[ReplicaId, int]

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.consistent else "VIOLATED"
        return (
            f"{self.workload.name}: {len(self.workload)} ops, {self.steps} deliveries, "
            f"{self.messages_sent} msgs, {self.metadata_counters_sent} counters shipped, "
            f"consistency {status}"
        )


def run_workload(
    cluster: SimulationHost,
    workload: Workload,
    interleave_steps: int = 1,
    check: bool = True,
) -> WorkloadResult:
    """Replay a workload on a cluster and validate the execution.

    ``cluster`` is any :class:`~repro.sim.engine.SimulationHost` — the
    peer-to-peer cluster, or a client–server cluster with co-located
    clients; operations route through
    :meth:`~repro.sim.engine.SimulationHost.submit_operation`.

    Parameters
    ----------
    interleave_steps:
        After each operation, up to this many network deliveries are
        performed, interleaving propagation with new operations (0 delays all
        propagation until the end — the most adversarial buffering pattern).
    check:
        When ``True`` the consistency checker runs at the end and its verdict
        is included in the result.
    """
    steps = 0
    for operation in workload.operations:
        cluster.submit_operation(operation)
        for _ in range(interleave_steps):
            if cluster.step():
                steps += 1
    steps += cluster.run_until_quiescent()

    if check:
        report = cluster.check_consistency()
        consistent = report.is_causally_consistent
        safety = len(report.safety_violations)
        liveness = len(report.liveness_violations)
    else:
        consistent, safety, liveness = True, 0, 0

    return WorkloadResult(
        workload=workload,
        steps=steps,
        consistent=consistent,
        safety_violations=safety,
        liveness_violations=liveness,
        messages_sent=cluster.network.stats.messages_sent,
        metadata_counters_sent=cluster.network.stats.metadata_counters_sent,
        mean_apply_latency=cluster.metrics.mean_apply_latency,
        metadata_sizes=cluster.metadata_sizes(),
    )


# ----------------------------------------------------------------------
# Open-loop workloads (Poisson / bursty client arrivals)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TimedOperation:
    """One operation arriving at a fixed simulated time."""

    time: float
    operation: Operation


@dataclass(frozen=True)
class OpenLoopWorkload:
    """A named sequence of timed client arrivals.

    Unlike the closed-loop :class:`Workload` — where the driver submits the
    next operation only after deciding how far to advance the network — an
    open-loop workload fixes every arrival time up front, independent of the
    system's progress.  Queues can therefore actually build up, which is
    what makes open-loop runs the right model for measuring throughput and
    latency under production-style client traffic.
    """

    name: str
    arrivals: Tuple[TimedOperation, ...]

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        """The last scheduled arrival time (0.0 when empty)."""
        return self.arrivals[-1].time if self.arrivals else 0.0

    @property
    def write_count(self) -> int:
        """Number of write arrivals."""
        return sum(1 for a in self.arrivals if a.operation.kind == "write")

    @property
    def read_count(self) -> int:
        """Number of read arrivals."""
        return sum(1 for a in self.arrivals if a.operation.kind == "read")


def _random_operation(
    graph: ShareGraph,
    rng: random.Random,
    replica_ids: Sequence[ReplicaId],
    write_fraction: float,
    index: int,
    prefix: str,
) -> Operation:
    replica_id = rng.choice(replica_ids)
    register = rng.choice(_writable_registers(graph, replica_id))
    if rng.random() < write_fraction:
        return Operation("write", replica_id, register, value=f"{prefix}{index}")
    return Operation("read", replica_id, register)


def poisson_workload(
    graph: ShareGraph,
    rate: float,
    duration: float,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> OpenLoopWorkload:
    """Memoryless open-loop arrivals at ``rate`` operations per time unit.

    Inter-arrival gaps are exponential with mean ``1/rate``; targets and
    kinds are drawn like :func:`uniform_workload`.
    """
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    arrivals: List[TimedOperation] = []
    t = rng.expovariate(rate)
    index = 0
    while t <= duration:
        operation = _random_operation(graph, rng, replica_ids, write_fraction, index, "p")
        arrivals.append(TimedOperation(time=t, operation=operation))
        t += rng.expovariate(rate)
        index += 1
    return OpenLoopWorkload("poisson", tuple(arrivals))


def poisson_workload_dynamic(
    placements: Sequence[Tuple[float, "Any"]],
    rate: float,
    duration: float,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> OpenLoopWorkload:
    """Memoryless open-loop arrivals that target a *changing* replica set.

    ``placements`` is the configuration timeline
    ``[(effective time, RegisterPlacement), …]`` (normally produced by
    :meth:`repro.sim.reconfig.ReconfigSchedule.placements_over`): each
    arrival at time ``t`` picks its target replica and register from the
    placement in effect at ``t``, so joiners start receiving traffic once
    they are scheduled to be members and leavers stop.  Arrivals landing in
    a migration window — or before a deferred commit actually installs the
    configuration — are rejected by the host and counted, which is exactly
    the availability cost the reconfiguration experiments measure.
    """
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    if not placements:
        raise ConfigurationError("placements timeline must be non-empty")
    timeline = sorted(placements, key=lambda entry: entry[0])
    rng = random.Random(seed)
    arrivals: List[TimedOperation] = []
    t = rng.expovariate(rate)
    index = 0
    while t <= duration:
        placement = timeline[0][1]
        for start, candidate in timeline:
            if start <= t:
                placement = candidate
            else:
                break
        # Draw a replica that stores at least one register (a joiner with a
        # fresh empty register set cannot serve operations yet).
        replica_ids = [
            rid for rid in placement.replica_ids if placement.registers_at(rid)
        ]
        replica_id = rng.choice(replica_ids)
        register = rng.choice(sorted(placement.registers_at(replica_id)))
        if rng.random() < write_fraction:
            operation = Operation("write", replica_id, register, value=f"d{index}")
        else:
            operation = Operation("read", replica_id, register)
        arrivals.append(TimedOperation(time=t, operation=operation))
        t += rng.expovariate(rate)
        index += 1
    return OpenLoopWorkload("poisson-dynamic", tuple(arrivals))


def drifting_hotspot_workload(
    home: Mapping[ReplicaId, Register],
    groups: Sequence[Sequence[ReplicaId]],
    rate: float,
    duration: float,
    write_fraction: float = 0.8,
    rotations: int = 4,
    seed: int = 0,
) -> OpenLoopWorkload:
    """Poisson arrivals whose *writer set* rotates between replica groups.

    The load model behind experiment E22: clients issue writes at a
    rotating hot group of replicas (one group per ``duration /
    rotations`` phase, cycling through ``groups`` — normally the replicas
    of each topology region), and every write targets the writing
    replica's fixed *home* register.  Reads are uniform over all
    replicas, each reading its own home register.

    Homes never move with the hotspot, so the workload stays valid under
    an adaptive controller that relocates only non-home copies: what
    drifts is *which* registers are hot and therefore where their update
    traffic flows — exactly the shift a static placement cannot follow
    and an online reconfiguration loop can.
    """
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    if rotations < 1:
        raise ConfigurationError("rotations must be >= 1")
    groups = [sorted(group) for group in groups if group]
    if not groups:
        raise ConfigurationError("need at least one non-empty writer group")
    replica_ids = sorted(home)
    for group in groups:
        for rid in group:
            if rid not in home:
                raise ConfigurationError(
                    f"writer group member {rid!r} has no home register"
                )
    rng = random.Random(seed)
    phase = duration / rotations
    arrivals: List[TimedOperation] = []
    t = rng.expovariate(rate)
    index = 0
    while t <= duration:
        rotation = min(int(t / phase), rotations - 1)
        group = groups[rotation % len(groups)]
        if rng.random() < write_fraction:
            writer = rng.choice(group)
            operation = Operation(
                "write", writer, home[writer], value=f"h{index}"
            )
        else:
            reader = rng.choice(replica_ids)
            operation = Operation("read", reader, home[reader])
        arrivals.append(TimedOperation(time=t, operation=operation))
        t += rng.expovariate(rate)
        index += 1
    return OpenLoopWorkload("drifting-hotspot", tuple(arrivals))


def single_writer_workload(
    graph: ShareGraph,
    rate: float,
    duration: float,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> OpenLoopWorkload:
    """Poisson arrivals in which every register has exactly one writer.

    Each register's *designated writer* is the smallest replica id storing
    it; writes to a register are issued only by its writer, reads happen
    anywhere the register is stored.  All writes to one register are then
    totally ordered by the writer's session (``↪``), so any causally
    consistent execution applies them in that order at every storing
    replica — the final value of every register is a function of the
    schedule alone, independent of message timing.

    That timing-independence is what the sim-vs-live differential harness
    (``tests/differential``) needs: the simulator and the live runtime
    deliver with completely different clocks, yet on a single-writer
    workload both must converge to the identical final state.
    """
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    owned: Dict[ReplicaId, List[Register]] = {
        rid: sorted(
            register
            for register in graph.registers_at(rid)
            if min(graph.replicas_storing(register)) == rid
        )
        for rid in replica_ids
    }
    arrivals: List[TimedOperation] = []
    t = rng.expovariate(rate)
    index = 0
    while t <= duration:
        replica_id = rng.choice(replica_ids)
        if rng.random() < write_fraction and owned[replica_id]:
            register = rng.choice(owned[replica_id])
            operation = Operation("write", replica_id, register, value=f"s{index}")
        else:
            register = rng.choice(_writable_registers(graph, replica_id))
            operation = Operation("read", replica_id, register)
        arrivals.append(TimedOperation(time=t, operation=operation))
        t += rng.expovariate(rate)
        index += 1
    return OpenLoopWorkload("single-writer", tuple(arrivals))


def bursty_workload(
    graph: ShareGraph,
    burst_rate: float,
    idle_rate: float,
    burst_length: float,
    idle_length: float,
    duration: float,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> OpenLoopWorkload:
    """An on/off arrival process: Poisson bursts separated by quiet gaps.

    The process alternates a burst phase of ``burst_length`` time units with
    arrivals at ``burst_rate``, and an idle phase of ``idle_length`` with
    arrivals at ``idle_rate`` (which may be 0 for complete silence).  This
    is the classic stress pattern for pending-buffer growth: bursts overrun
    the propagation capacity, gaps let the system drain.
    """
    for name, value in (("burst_rate", burst_rate),
                        ("burst_length", burst_length),
                        ("duration", duration)):
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive")
    if idle_rate < 0 or idle_length < 0:
        raise ConfigurationError("idle_rate and idle_length must be non-negative")
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    arrivals: List[TimedOperation] = []
    index = 0
    phase_start = 0.0
    in_burst = True
    while phase_start < duration:
        rate = burst_rate if in_burst else idle_rate
        length = burst_length if in_burst else idle_length
        phase_end = min(phase_start + length, duration)
        if rate > 0:
            t = phase_start + rng.expovariate(rate)
            while t <= phase_end:
                operation = _random_operation(
                    graph, rng, replica_ids, write_fraction, index, "b"
                )
                arrivals.append(TimedOperation(time=t, operation=operation))
                t += rng.expovariate(rate)
                index += 1
        phase_start = phase_end
        in_burst = not in_burst
    return OpenLoopWorkload("bursty", tuple(arrivals))


@dataclass
class OpenLoopResult:
    """Everything measured while running an open-loop workload on a host."""

    workload: OpenLoopWorkload
    steps: int
    consistent: bool
    safety_violations: int
    liveness_violations: int
    #: Simulated time at which the system fully drained (the makespan).
    makespan: float
    messages_sent: int
    metadata_counters_sent: int
    #: Remote-apply (propagation) latency percentiles.
    apply_latency: LatencySummary
    #: Client-observed operation blocking-time percentiles.
    operation_latency: LatencySummary
    #: Remote applies per time bucket.
    throughput: Tuple[Tuple[float, int], ...]
    #: Sampled pending-buffer depth statistics per replica.
    queue_depths: Dict[ReplicaId, QueueDepthStats]
    #: Peak pending-buffer occupancy per replica (exact, not sampled).
    max_pending: Dict[ReplicaId, int]

    @property
    def effective_throughput(self) -> float:
        """Remote applies per simulated time unit over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return sum(count for _, count in self.throughput) / self.makespan

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.consistent else "VIOLATED"
        return (
            f"{self.workload.name}: {len(self.workload)} arrivals over "
            f"{self.workload.duration:.1f}, drained at {self.makespan:.1f}, "
            f"{self.messages_sent} msgs, apply p99 {self.apply_latency.p99:.1f}, "
            f"consistency {status}"
        )


def run_open_loop(
    cluster: SimulationHost,
    workload: OpenLoopWorkload,
    check: bool = True,
    queue_sample_interval: Optional[float] = None,
    throughput_bucket: float = 10.0,
) -> OpenLoopResult:
    """Run an open-loop workload on a host and validate the execution.

    Every arrival is scheduled on the host's event kernel up front; the
    kernel then interleaves client arrivals with message deliveries in
    global time order until the system drains.  Works on any
    :class:`~repro.sim.engine.SimulationHost`.

    Arrival times are offsets from the host's clock at the start of this
    call, so a warmed-up cluster replays the schedule with its spacing
    intact.  (The cumulative metrics — throughput timeline, latency
    samples — still cover the host's whole history; use a fresh cluster
    for per-run numbers.)

    Parameters
    ----------
    queue_sample_interval:
        When set, pending-buffer depths are sampled every that many time
        units while the run is in progress (feeding ``queue_depths``).
    throughput_bucket:
        Bucket width of the reported apply-throughput timeline.
    """
    started_at = cluster.now
    for arrival in workload.arrivals:
        cluster.schedule_arrival_at(started_at + arrival.time, arrival.operation)

    if queue_sample_interval is not None:
        if queue_sample_interval <= 0:
            raise ConfigurationError("queue_sample_interval must be positive")

        def sample(host: SimulationHost, time: float) -> None:
            host.sample_queue_depths()
            if host.busy():
                host.schedule_timer(queue_sample_interval, sample, tag="queue-sampler")

        cluster.schedule_timer(queue_sample_interval, sample, tag="queue-sampler")

    steps = cluster.run_until_quiescent()

    if check:
        report = cluster.check_consistency()
        consistent = report.is_causally_consistent
        safety = len(report.safety_violations)
        liveness = len(report.liveness_violations)
    else:
        consistent, safety, liveness = True, 0, 0

    metrics = cluster.metrics
    return OpenLoopResult(
        workload=workload,
        steps=steps,
        consistent=consistent,
        safety_violations=safety,
        liveness_violations=liveness,
        # Time from the start of this run to the last delivery/arrival:
        # trailing sampler timers do not count towards the makespan.
        makespan=max(cluster.last_activity_time, started_at) - started_at,
        messages_sent=cluster.network.stats.messages_sent,
        metadata_counters_sent=cluster.network.stats.metadata_counters_sent,
        apply_latency=metrics.apply_latency_summary(),
        operation_latency=metrics.operation_latency_summary(),
        throughput=tuple(metrics.apply_throughput(throughput_bucket)),
        queue_depths=metrics.queue_depth_summary(),
        max_pending=dict(metrics.max_pending),
    )
