"""Workload generation and execution.

A *workload* is a finite sequence of client operations (writes and reads)
addressed to specific replicas.  Workloads are plain data, so the same
workload can be replayed against different protocols (the paper's algorithm
and every baseline) under the same network seed — the comparison mode used
by the metadata-overhead and optimization experiments.

Generators provided:

* :func:`uniform_workload` — every replica writes its own registers at random;
* :func:`hotspot_workload` — a skewed register popularity distribution;
* :func:`causal_chain_workload` — deliberate cross-replica dependency chains
  (write at one replica, read/acknowledge at a sharer, write there, …), the
  access pattern that exercises causality tracking hardest;
* :func:`read_heavy_workload` — mostly reads with occasional writes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from .cluster import Cluster


@dataclass(frozen=True)
class Operation:
    """One client operation addressed to a replica.

    Attributes
    ----------
    kind:
        ``"write"`` or ``"read"``.
    replica_id:
        The replica whose co-located client issues the operation.
    register:
        The target register (always stored at the replica).
    value:
        The value written (``None`` for reads).
    """

    kind: str
    replica_id: ReplicaId
    register: Register
    value: Any = None


@dataclass(frozen=True)
class Workload:
    """A named, replayable sequence of operations."""

    name: str
    operations: Tuple[Operation, ...]

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def write_count(self) -> int:
        """Number of write operations."""
        return sum(1 for op in self.operations if op.kind == "write")

    @property
    def read_count(self) -> int:
        """Number of read operations."""
        return sum(1 for op in self.operations if op.kind == "read")


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def _writable_registers(graph: ShareGraph, replica_id: ReplicaId) -> List[Register]:
    return sorted(graph.registers_at(replica_id))


def uniform_workload(
    graph: ShareGraph,
    num_operations: int,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> Workload:
    """Operations spread uniformly over replicas and their local registers."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    operations: List[Operation] = []
    for index in range(num_operations):
        replica_id = rng.choice(replica_ids)
        registers = _writable_registers(graph, replica_id)
        register = rng.choice(registers)
        if rng.random() < write_fraction:
            operations.append(
                Operation("write", replica_id, register, value=f"v{index}")
            )
        else:
            operations.append(Operation("read", replica_id, register))
    return Workload("uniform", tuple(operations))


def hotspot_workload(
    graph: ShareGraph,
    num_operations: int,
    hot_fraction: float = 0.8,
    write_fraction: float = 0.7,
    seed: int = 0,
) -> Workload:
    """A skewed workload: ``hot_fraction`` of operations hit one popular register per replica."""
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    hot_register = {
        rid: sorted(graph.registers_at(rid))[0] for rid in replica_ids
    }
    operations: List[Operation] = []
    for index in range(num_operations):
        replica_id = rng.choice(replica_ids)
        registers = _writable_registers(graph, replica_id)
        if rng.random() < hot_fraction:
            register = hot_register[replica_id]
        else:
            register = rng.choice(registers)
        if rng.random() < write_fraction:
            operations.append(
                Operation("write", replica_id, register, value=f"h{index}")
            )
        else:
            operations.append(Operation("read", replica_id, register))
    return Workload("hotspot", tuple(operations))


def causal_chain_workload(
    graph: ShareGraph,
    num_chains: int,
    chain_length: int = 4,
    seed: int = 0,
) -> Workload:
    """Chains of writes that hop across share-graph neighbours.

    Each chain starts at a random replica and repeatedly: writes a register
    shared with a random neighbour, then continues from that neighbour.  The
    resulting updates form long ``↪`` chains spanning many replicas — the
    pattern that makes causality tracking under partial replication hard.
    """
    rng = random.Random(seed)
    replica_ids = list(graph.replica_ids)
    operations: List[Operation] = []
    value = 0
    for _ in range(num_chains):
        current = rng.choice(replica_ids)
        for _ in range(chain_length):
            neighbours = list(graph.neighbors(current))
            if not neighbours:
                break
            nxt = rng.choice(neighbours)
            shared = sorted(graph.shared_registers(current, nxt))
            register = rng.choice(shared)
            operations.append(Operation("write", current, register, value=f"c{value}"))
            value += 1
            operations.append(Operation("read", nxt, register))
            current = nxt
    return Workload("causal_chain", tuple(operations))


def read_heavy_workload(
    graph: ShareGraph,
    num_operations: int,
    seed: int = 0,
) -> Workload:
    """A 90%-read workload (the common case for geo-replicated stores)."""
    return uniform_workload(graph, num_operations, write_fraction=0.1, seed=seed)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class WorkloadResult:
    """Everything measured while replaying a workload on a cluster."""

    workload: Workload
    steps: int
    consistent: bool
    safety_violations: int
    liveness_violations: int
    messages_sent: int
    metadata_counters_sent: int
    mean_apply_latency: float
    metadata_sizes: Dict[ReplicaId, int]

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.consistent else "VIOLATED"
        return (
            f"{self.workload.name}: {len(self.workload)} ops, {self.steps} deliveries, "
            f"{self.messages_sent} msgs, {self.metadata_counters_sent} counters shipped, "
            f"consistency {status}"
        )


def run_workload(
    cluster: Cluster,
    workload: Workload,
    interleave_steps: int = 1,
    check: bool = True,
) -> WorkloadResult:
    """Replay a workload on a cluster and validate the execution.

    Parameters
    ----------
    interleave_steps:
        After each operation, up to this many network deliveries are
        performed, interleaving propagation with new operations (0 delays all
        propagation until the end — the most adversarial buffering pattern).
    check:
        When ``True`` the consistency checker runs at the end and its verdict
        is included in the result.
    """
    steps = 0
    for operation in workload.operations:
        if operation.kind == "write":
            cluster.write(operation.replica_id, operation.register, operation.value)
        elif operation.kind == "read":
            cluster.read(operation.replica_id, operation.register)
        else:
            raise ConfigurationError(f"unknown operation kind {operation.kind!r}")
        for _ in range(interleave_steps):
            if cluster.step():
                steps += 1
    steps += cluster.run_until_quiescent()

    if check:
        report = cluster.check_consistency()
        consistent = report.is_causally_consistent
        safety = len(report.safety_violations)
        liveness = len(report.liveness_violations)
    else:
        consistent, safety, liveness = True, 0, 0

    return WorkloadResult(
        workload=workload,
        steps=steps,
        consistent=consistent,
        safety_violations=safety,
        liveness_violations=liveness,
        messages_sent=cluster.network.stats.messages_sent,
        metadata_counters_sent=cluster.network.stats.metadata_counters_sent,
        mean_apply_latency=cluster.metrics.mean_apply_latency,
        metadata_sizes=cluster.metadata_sizes(),
    )
