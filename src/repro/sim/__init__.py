"""Simulation substrate: asynchronous network, clusters, topologies, workloads.

The paper assumes an asynchronous message-passing system with reliable,
non-FIFO point-to-point channels.  This subpackage provides a deterministic,
seeded discrete-event simulation of that system plus the topology and
workload generators used by the evaluation harness.
"""

from .cluster import Cluster, ClusterMetrics, ReplicaFactory, build_cluster, edge_indexed_factory
from .delays import (
    AdversarialDelay,
    DelayModel,
    FixedDelay,
    PerChannelDelay,
    SlowChannelDelay,
    UniformDelay,
)
from .metrics import (
    ComparisonRow,
    FalseDependencyStats,
    MetadataProfile,
    all_edges_profile,
    compare_protocols,
    edge_indexed_profile,
    format_table,
    full_replication_profile,
    incident_only_profile,
    measure_false_dependencies,
)
from .network import Delivery, NetworkStats, SimNetwork
from .workloads import (
    Operation,
    Workload,
    WorkloadResult,
    causal_chain_workload,
    hotspot_workload,
    read_heavy_workload,
    run_workload,
    uniform_workload,
)

__all__ = [
    "AdversarialDelay",
    "Cluster",
    "ClusterMetrics",
    "ComparisonRow",
    "DelayModel",
    "Delivery",
    "FalseDependencyStats",
    "FixedDelay",
    "MetadataProfile",
    "NetworkStats",
    "Operation",
    "PerChannelDelay",
    "ReplicaFactory",
    "SimNetwork",
    "SlowChannelDelay",
    "UniformDelay",
    "Workload",
    "WorkloadResult",
    "all_edges_profile",
    "build_cluster",
    "causal_chain_workload",
    "compare_protocols",
    "edge_indexed_factory",
    "edge_indexed_profile",
    "format_table",
    "full_replication_profile",
    "hotspot_workload",
    "incident_only_profile",
    "measure_false_dependencies",
    "read_heavy_workload",
    "run_workload",
    "uniform_workload",
]
