"""Cross-protocol measurement helpers and the unified metrics pipeline.

The evaluation harness repeatedly answers the same question for different
protocols and topologies: *how much metadata does each replica keep and ship,
and what does the execution cost in messages, latency and (for relaxed
protocols) false dependencies?*  This module centralises those measurements
so benchmarks and examples produce consistent numbers.

The per-run measurement primitives — :class:`~repro.sim.engine.RunMetrics`
(filled identically by the peer-to-peer and client–server hosts),
:class:`~repro.sim.engine.LatencySummary` percentiles,
:func:`~repro.sim.engine.throughput_timeline` and per-replica
:class:`~repro.sim.engine.QueueDepthStats` — live in
:mod:`repro.sim.engine` and are re-exported here as the single import point
for benchmarks, the analysis harness and the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.causal import HappenedBefore
from ..core.protocol import EventKind, ReplicaEvent
from ..core.registers import ReplicaId
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import TimestampGraph, build_all_timestamp_graphs
from .cluster import Cluster, ReplicaFactory
from .delays import DelayModel
from .engine import (
    FaultRecord,
    LatencySummary,
    QueueDepthSample,
    QueueDepthStats,
    RunMetrics,
    SimulationHost,
    throughput_timeline,
)
from .workloads import Workload, WorkloadResult, run_workload

__all__ = [
    "ComparisonRow",
    "FalseDependencyStats",
    "FaultRecord",
    "LatencySummary",
    "MetadataProfile",
    "QueueDepthSample",
    "QueueDepthStats",
    "RunMetrics",
    "all_edges_profile",
    "compare_protocols",
    "edge_indexed_profile",
    "format_table",
    "full_replication_profile",
    "incident_only_profile",
    "measure_false_dependencies",
    "render_latency_summary",
    "throughput_timeline",
]


def render_latency_summary(name: str, summary: LatencySummary) -> str:
    """One line of a latency report: ``name: n=…, mean=…, p50/p90/p99/max``."""
    return (
        f"{name}: n={summary.count} mean={summary.mean:.2f} "
        f"p50={summary.p50:.2f} p90={summary.p90:.2f} "
        f"p99={summary.p99:.2f} max={summary.max:.2f}"
    )


@dataclass(frozen=True)
class MetadataProfile:
    """Static (workload-independent) metadata requirements of one protocol."""

    protocol: str
    counters_per_replica: Mapping[ReplicaId, int]
    storage_per_replica: Mapping[ReplicaId, int]

    @property
    def max_counters(self) -> int:
        """Worst-case counters held by any replica."""
        return max(self.counters_per_replica.values(), default=0)

    @property
    def mean_counters(self) -> float:
        """Average counters per replica."""
        if not self.counters_per_replica:
            return 0.0
        return sum(self.counters_per_replica.values()) / len(self.counters_per_replica)

    @property
    def total_storage(self) -> int:
        """Total register copies stored across the system."""
        return sum(self.storage_per_replica.values())

    def bits_per_replica(self, max_updates: int) -> Dict[ReplicaId, float]:
        """Timestamp size in bits per replica when counters are bounded by ``max_updates``."""
        bits = math.log2(max_updates + 1)
        return {rid: n * bits for rid, n in self.counters_per_replica.items()}


def edge_indexed_profile(graph: ShareGraph) -> MetadataProfile:
    """Metadata profile of the paper's algorithm on a share graph."""
    tgraphs = build_all_timestamp_graphs(graph)
    return MetadataProfile(
        protocol="edge-indexed (paper)",
        counters_per_replica={rid: tg.num_counters for rid, tg in tgraphs.items()},
        storage_per_replica={
            rid: graph.placement.storage_cost(rid) for rid in graph.replica_ids
        },
    )


def full_replication_profile(graph: ShareGraph) -> MetadataProfile:
    """Metadata profile of the full-replication vector-clock baseline.

    Every replica stores every register and keeps a vector of length ``R``.
    """
    num_registers = len(graph.placement.registers)
    return MetadataProfile(
        protocol="full replication (vector clock)",
        counters_per_replica={rid: graph.num_replicas for rid in graph.replica_ids},
        storage_per_replica={rid: num_registers for rid in graph.replica_ids},
    )


def all_edges_profile(graph: ShareGraph) -> MetadataProfile:
    """Metadata profile of the conservative track-every-share-graph-edge baseline."""
    num_edges = len(graph.edges)
    return MetadataProfile(
        protocol="all share-graph edges",
        counters_per_replica={rid: num_edges for rid in graph.replica_ids},
        storage_per_replica={
            rid: graph.placement.storage_cost(rid) for rid in graph.replica_ids
        },
    )


def incident_only_profile(graph: ShareGraph) -> MetadataProfile:
    """Metadata profile of the (unsafe) incident-edges-only baseline."""
    return MetadataProfile(
        protocol="incident edges only (unsafe)",
        counters_per_replica={
            rid: len(graph.incident_edges(rid)) for rid in graph.replica_ids
        },
        storage_per_replica={
            rid: graph.placement.storage_cost(rid) for rid in graph.replica_ids
        },
    )


@dataclass
class FalseDependencyStats:
    """Counts of apply-time delays not justified by real causality.

    A *false dependency* (Section 5) is recorded whenever the application of
    an update at a replica was blocked in the pending buffer behind some
    update that is **not** in its causal past.  We approximate the paper's
    notion operationally: for every remote apply we count how many updates
    were applied at that replica after the update's arrival but before its
    application and are not ``↪``-predecessors of it.
    """

    total_applies: int = 0
    delayed_applies: int = 0
    false_blockers: int = 0

    @property
    def false_dependency_rate(self) -> float:
        """Fraction of remote applies that waited behind a non-dependency."""
        if not self.total_applies:
            return 0.0
        return self.delayed_applies / self.total_applies


def measure_false_dependencies(cluster: SimulationHost) -> FalseDependencyStats:
    """Post-hoc false-dependency measurement over a host's traces.

    Uses each replica's receive/apply ordering: any update applied between a
    message's receipt and its application that is not a causal predecessor of
    that message's update counts as a false blocker.  Works on either
    architecture.
    """
    events = cluster.events_by_replica()
    relation = HappenedBefore.from_events(events)
    stats = FalseDependencyStats()
    for replica_id, trace_events in events.items():
        trace = [e for e in trace_events if e.kind is EventKind.APPLY]
        for position, event in enumerate(trace):
            if event.update is None:
                continue
            stats.total_applies += 1
            blockers = 0
            for earlier in trace[:position]:
                if earlier.update is None:
                    continue
                if earlier.sim_time < event.sim_time and not relation.happened_before(
                    earlier.update.uid, event.update.uid
                ):
                    blockers += 1
            if blockers:
                stats.delayed_applies += 1
                stats.false_blockers += blockers
    return stats


@dataclass
class ComparisonRow:
    """One row of a protocol-comparison table."""

    protocol: str
    topology: str
    mean_counters: float
    max_counters: int
    total_storage: int
    messages_sent: int
    metadata_counters_sent: int
    safety_violations: int
    liveness_violations: int
    mean_apply_latency: float


def compare_protocols(
    graph: ShareGraph,
    factories: Mapping[str, ReplicaFactory],
    workload: Workload,
    topology_name: str = "",
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
    interleave_steps: int = 1,
) -> List[ComparisonRow]:
    """Replay one workload against several protocols and tabulate the results.

    Every protocol sees the same workload and the same network seed, so the
    delivery schedules are comparable.
    """
    rows: List[ComparisonRow] = []
    for name, factory in factories.items():
        cluster = Cluster(
            graph, replica_factory=factory, delay_model=delay_model, seed=seed
        )
        result = run_workload(
            cluster, workload, interleave_steps=interleave_steps, check=True
        )
        sizes = result.metadata_sizes
        rows.append(
            ComparisonRow(
                protocol=name,
                topology=topology_name,
                mean_counters=sum(sizes.values()) / max(len(sizes), 1),
                max_counters=max(sizes.values(), default=0),
                total_storage=graph.placement.total_storage_cost(),
                messages_sent=result.messages_sent,
                metadata_counters_sent=result.metadata_counters_sent,
                safety_violations=result.safety_violations,
                liveness_violations=result.liveness_violations,
                mean_apply_latency=result.mean_apply_latency,
            )
        )
    return rows


def format_table(rows: Sequence[ComparisonRow]) -> str:
    """Render comparison rows as a fixed-width text table."""
    headers = [
        "protocol",
        "topology",
        "mean ctrs",
        "max ctrs",
        "storage",
        "msgs",
        "ctrs sent",
        "safety viol",
        "liveness viol",
        "apply latency",
    ]
    table: List[List[str]] = [headers]
    for row in rows:
        table.append(
            [
                row.protocol,
                row.topology,
                f"{row.mean_counters:.1f}",
                str(row.max_counters),
                str(row.total_storage),
                str(row.messages_sent),
                str(row.metadata_counters_sent),
                str(row.safety_violations),
                str(row.liveness_violations),
                f"{row.mean_apply_latency:.2f}",
            ]
        )
    widths = [max(len(r[c]) for r in table) for c in range(len(headers))]
    lines = []
    for r_index, r in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(r)))
        if r_index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
