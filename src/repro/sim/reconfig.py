"""Dynamic membership: epoch-based share-graph reconfiguration.

The paper fixes the replica set and share graph up front; every hoop,
timestamp graph and lower bound is computed once and frozen.  This module
lets all of that change *mid-run* — replicas join and leave, share-graph
edges appear and disappear — while causal consistency keeps holding across
the transition:

* a declarative :class:`ReconfigSchedule` (built from :func:`join`,
  :func:`leave`, :func:`add_edge`, :func:`remove_edge` actions) that a
  :class:`ReconfigManager` installs as first-class
  :class:`~repro.sim.engine.ReconfigEvent` kernel events;
* an **epoch protocol**: the coordinator stamps each configuration with an
  epoch.  A change opens a *migration window* (client operations at the
  affected replicas are rejected — the availability cost), and commits by
  first **completing the old epoch** — a virtual-synchrony-style flush that
  delivers every in-flight, parked and unacknowledged old-epoch message and
  runs the apply fixpoint, so no old-epoch frame survives into the new
  configuration (stale frames would carry timestamps indexed by edges that
  no longer exist; the wire layer rejects them cleanly);
* **migration**: every surviving replica recomputes its timestamp graph for
  the new share graph and projects its timestamp onto the new edge set —
  surviving counters are preserved (keeping per-edge FIFO chains intact),
  removed edges are garbage-collected, new edges start at zero
  (:meth:`~repro.core.timestamps.EdgeTimestamp.migrated`);
* **state transfer**: joiners — and survivors that gained registers through
  an edge change — receive the gained registers' update history as a
  bootstrap stream: ordinary messages through the transport (so the
  sent-log, delays, batching and the crash-recovery resync all apply — a
  joiner that crashes mid-transfer recovers through exactly the same
  anti-entropy path as any other crashed replica), topologically sorted
  along ``↪`` by the coordinator and applied strictly in order behind a
  gate that holds back all normal traffic until the stream completes;
* **safety under faults**: a commit is deferred while a partition is open,
  a member is down, or a previous transfer is still running — the
  coordinator commits only when it can reach a stable membership, and
  resumes automatically when the fault clears.

Attach a :class:`ReconfigManager` to either architecture's host; everything
is inert (one ``reconfig_manager is None`` check) without one.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.causal import HappenedBefore
from ..core.errors import ReconfigurationError
from ..core.protocol import BootstrapMetadata, ReplicaEvent, Update, UpdateId, UpdateMessage
from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..core.share_graph import ShareGraph
from ..wire.membership import MembershipChange, encode_membership_change
from .engine import BatchDeliveryEvent, DeliveryEvent, FaultRecord, SimulationHost

__all__ = [
    "EpochMark",
    "ReconfigAction",
    "ReconfigManager",
    "ReconfigSchedule",
    "add_edge",
    "apply_action",
    "join",
    "leave",
    "membership_change_of",
    "random_churn_schedule",
    "remove_edge",
    "topological_update_order",
]


# ======================================================================
# Declarative reconfiguration actions and schedules
# ======================================================================

@dataclass(frozen=True)
class ReconfigAction:
    """One scheduled configuration change.

    Build these with the module-level constructors (:func:`join`,
    :func:`leave`, :func:`add_edge`, :func:`remove_edge`) rather than by
    hand.  ``time`` is the *earliest* instant the change's migration window
    may open; the coordinator serialises overlapping changes.
    """

    time: float
    kind: str  # "join" | "leave" | "add_edge" | "remove_edge"
    replica_id: Optional[ReplicaId] = None
    registers: FrozenSet[Register] = frozenset()
    edge: Optional[Tuple[ReplicaId, ReplicaId]] = None
    register: Optional[Register] = None
    #: For joins: registers simultaneously granted to existing replicas
    #: (``{anchor: registers}``), so a joiner can attach through a fresh
    #: register without a second action.
    grants: Tuple[Tuple[ReplicaId, FrozenSet[Register]], ...] = ()
    #: For joins on measured topologies: the topology node hosting the
    #: joiner.  ``None`` co-hosts it with its first share-graph neighbor.
    node: Optional[str] = None

    def describe(self) -> str:
        """Human-readable one-liner for timelines and tables."""
        if self.kind == "join":
            regs = ",".join(sorted(self.registers))
            return f"join replica {self.replica_id} storing {{{regs}}}"
        if self.kind == "leave":
            return f"leave replica {self.replica_id}"
        if self.kind == "add_edge":
            i, j = self.edge
            return f"add edge {i}<->{j} via register {self.register!r}"
        if self.kind == "remove_edge":
            i, j = self.edge
            return f"remove edge {i}<->{j}"
        return self.kind


def join(time: float, replica_id: ReplicaId,
         registers: Iterable[Register],
         grants: Optional[Mapping[ReplicaId, Iterable[Register]]] = None,
         node: Optional[str] = None,
         ) -> ReconfigAction:
    """A replica joins, storing ``registers``.

    Existing register names join their replication groups — which triggers
    state transfer of their history to the joiner; fresh names start
    empty.  ``grants`` optionally places registers at existing replicas in
    the same change (the usual way to attach a joiner through a *fresh*
    shared register: grant it to the anchor too).  ``node`` places the
    joiner on a topology node when the run uses a measured
    :class:`~repro.topo.delays.LatencyDelayModel`; without one the joiner
    is co-hosted with its first share-graph neighbor.
    """
    return ReconfigAction(
        time=time, kind="join", replica_id=replica_id,
        registers=frozenset(str(r) for r in registers),
        grants=tuple(
            (rid, frozenset(str(r) for r in regs))
            for rid, regs in sorted((grants or {}).items())
        ),
        node=str(node) if node is not None else None,
    )


def leave(time: float, replica_id: ReplicaId) -> ReconfigAction:
    """A replica leaves; registers it alone stored leave the system with it."""
    return ReconfigAction(time=time, kind="leave", replica_id=replica_id)


def add_edge(time: float, i: ReplicaId, j: ReplicaId,
             register: Optional[Register] = None) -> ReconfigAction:
    """Create (or thicken) the share-graph edge ``i <-> j``.

    ``register`` defaults to a fresh ``link_i_j`` name stored at both
    endpoints; naming an *existing* register instead places it at whichever
    endpoints lack it, which triggers state transfer of its history.
    """
    return ReconfigAction(
        time=time, kind="add_edge", edge=(i, j),
        register=str(register) if register is not None else f"link_{i}_{j}",
    )


def remove_edge(time: float, i: ReplicaId, j: ReplicaId) -> ReconfigAction:
    """Remove the share-graph edge ``i <-> j``.

    Replica ``j`` drops every register it shares with ``i`` (``X_ij``); the
    copies at ``i`` — and at any third replica — survive, so no register is
    orphaned by the change.
    """
    return ReconfigAction(time=time, kind="remove_edge", edge=(i, j))


def apply_action(placement: RegisterPlacement,
                 action: ReconfigAction) -> RegisterPlacement:
    """The new placement produced by one action (pure; raises on invalid)."""
    if action.kind == "join":
        placement = placement.with_replica(action.replica_id, action.registers)
        if action.grants:
            placement = placement.with_additional_registers(
                {rid: regs for rid, regs in action.grants}
            )
        return placement
    if action.kind == "leave":
        if placement.num_replicas <= 1:
            raise ReconfigurationError("cannot remove the last replica")
        return placement.without_replica(action.replica_id)
    if action.kind == "add_edge":
        i, j = action.edge
        extra: Dict[ReplicaId, Set[Register]] = {}
        for rid in (i, j):
            if not placement.stores_register(rid, action.register):
                extra.setdefault(rid, set()).add(action.register)
        if not extra:
            raise ReconfigurationError(
                f"register {action.register!r} is already stored at both "
                f"endpoints of edge {action.edge}"
            )
        return placement.with_additional_registers(extra)
    if action.kind == "remove_edge":
        i, j = action.edge
        shared = placement.shared_registers(i, j)
        if not shared:
            raise ReconfigurationError(f"no share-graph edge between {i} and {j}")
        return placement.without_registers_at(j, shared)
    raise ReconfigurationError(f"unknown reconfiguration kind {action.kind!r}")


def membership_change_of(old: RegisterPlacement, new: RegisterPlacement,
                         epoch: int) -> MembershipChange:
    """The wire-level announcement describing ``old -> new`` (epoch commit)."""
    old_ids = set(old.replica_ids)
    new_ids = set(new.replica_ids)
    joins = {rid: new.registers_at(rid) for rid in sorted(new_ids - old_ids)}
    leaves = tuple(sorted(old_ids - new_ids))
    grants: Dict[ReplicaId, FrozenSet[Register]] = {}
    revokes: Dict[ReplicaId, FrozenSet[Register]] = {}
    for rid in sorted(old_ids & new_ids):
        gained = new.registers_at(rid) - old.registers_at(rid)
        lost = old.registers_at(rid) - new.registers_at(rid)
        if gained:
            grants[rid] = gained
        if lost:
            revokes[rid] = lost
    return MembershipChange(
        epoch=epoch, joins=joins, leaves=leaves, grants=grants, revokes=revokes,
    )


@dataclass(frozen=True)
class ReconfigSchedule:
    """A named, replayable sequence of configuration changes.

    Schedules are plain data — like workloads and fault schedules — so the
    same churn replays identically on both architectures under the same
    network seed.
    """

    name: str
    actions: Tuple[ReconfigAction, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.actions, key=lambda a: a.time))
        object.__setattr__(self, "actions", ordered)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def duration(self) -> float:
        """The time of the last scheduled action (0.0 when empty)."""
        return self.actions[-1].time if self.actions else 0.0

    def placements_over(
        self, initial: RegisterPlacement, window: float = 0.0
    ) -> List[Tuple[float, RegisterPlacement]]:
        """The configuration timeline ``[(effective time, placement), …]``.

        Each action takes effect ``window`` after its scheduled time (the
        commit instant under an uncontended :class:`ReconfigManager` with
        that window).  Used to generate workloads that target the changing
        replica set (:func:`repro.sim.workloads.poisson_workload_dynamic`).
        """
        timeline = [(0.0, initial)]
        placement = initial
        for action in self.actions:
            placement = apply_action(placement, action)
            timeline.append((action.time + window, placement))
        return timeline


def random_churn_schedule(
    placement: RegisterPlacement,
    duration: float,
    joins: int = 1,
    leaves: int = 0,
    edge_changes: int = 0,
    seed: int = 0,
    join_style: str = "leaf",
    name: str = "random-churn",
) -> ReconfigSchedule:
    """A seeded churn schedule over an existing placement.

    Two join styles:

    * ``"leaf"`` — the joiner attaches to a random member through one
      *fresh* shared register (granted to the anchor in the same change).
      A tree stays a tree, so the Section-4 closed-form bounds keep
      applying at every epoch; no state transfer is needed (the fresh
      register has no history).
    * ``"group"`` — the joiner additionally joins the replication group of
      one *existing* register of its anchor, which triggers state transfer
      of that register's history.

    Leaves remove replicas of share-degree ≤ 1 where possible; edge
    changes place an existing register of one endpoint at a random
    non-adjacent other (the gainer receives its history via state
    transfer).  Actions are spread uniformly over ``[0.2, 0.8] ×
    duration`` and the whole schedule is deterministic in ``seed``.
    """
    if join_style not in ("leaf", "group"):
        raise ReconfigurationError(f"unknown join_style {join_style!r}")
    rng = random.Random(seed)
    actions: List[ReconfigAction] = []
    current = placement
    next_id = max(placement.replica_ids) + 1
    total = joins + leaves + edge_changes
    if total == 0:
        return ReconfigSchedule(name=name, actions=())
    times = sorted(rng.uniform(0.2 * duration, 0.8 * duration) for _ in range(total))
    kinds = ["join"] * joins + ["leave"] * leaves + ["edge"] * edge_changes
    rng.shuffle(kinds)
    for at, kind in zip(times, kinds):
        graph = ShareGraph.from_placement(current)
        if kind == "join":
            anchor = rng.choice(list(current.replica_ids))
            link = f"churn_{next_id}_{anchor}"
            registers = {link}
            if join_style == "group":
                anchored = sorted(current.registers_at(anchor))
                if anchored:
                    registers.add(rng.choice(anchored))
            action = join(at, next_id, registers, grants={anchor: {link}})
            next_id += 1
        elif kind == "leave":
            if current.num_replicas <= 2:
                raise ReconfigurationError(
                    "cannot schedule a leave on a placement of "
                    f"{current.num_replicas} replicas"
                )
            candidates = [
                rid for rid in current.replica_ids if graph.degree(rid) <= 1
            ] or list(current.replica_ids)
            victim = rng.choice(candidates)
            action = leave(at, victim)
        else:
            pairs = [
                (a, b)
                for a in current.replica_ids
                for b in current.replica_ids
                if a < b and not graph.has_edge(a, b)
                and current.registers_at(a)
            ]
            if not pairs:
                continue
            a, b = rng.choice(pairs)
            register = sorted(current.registers_at(a))[0]
            action = add_edge(at, a, b, register=register)
        current = apply_action(current, action)
        actions.append(action)
    return ReconfigSchedule(name=name, actions=tuple(actions))


# ======================================================================
# Coordinator-side causal ordering
# ======================================================================

def topological_update_order(
    events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
) -> Tuple[List[UpdateId], Dict[UpdateId, Update]]:
    """A deterministic linearisation of all issued updates along ``↪``.

    Kahn's algorithm over the direct happened-before edges with a
    uid-ordered heap as the tie-break, so two same-seed runs compute the
    identical order.  Returns the ordered uids and the uid → update map.
    """
    relation = HappenedBefore.from_events(events_by_replica)
    indegree: Dict[UpdateId, int] = {uid: 0 for uid in relation.updates}
    successors: Dict[UpdateId, List[UpdateId]] = {}
    for a, b in relation.direct_edges:
        if a in indegree and b in indegree:
            successors.setdefault(a, []).append(b)
            indegree[b] += 1
    ready = [uid for uid, degree in sorted(indegree.items()) if degree == 0]
    heapq.heapify(ready)
    order: List[UpdateId] = []
    while ready:
        uid = heapq.heappop(ready)
        order.append(uid)
        for nxt in sorted(successors.get(uid, ())):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(ready, nxt)
    return order, relation.updates


# ======================================================================
# The coordinator
# ======================================================================

@dataclass(frozen=True)
class EpochMark:
    """Traffic-counter snapshot at one epoch boundary (feeds E17)."""

    epoch: int
    time: float
    share_graph: ShareGraph
    messages_sent: int
    timestamp_bytes_sent: int
    metadata_counters_sent: int


class ReconfigManager:
    """Drives a reconfiguration schedule against a simulated deployment.

    Attaching a manager switches the host onto the dynamic-membership path:
    the transport starts logging sent messages (state transfer rides the
    same sent-log/resync machinery as crash recovery), client operations
    consult :meth:`rejecting`, and scheduled
    :class:`~repro.sim.engine.ReconfigEvent`\\ s replay deterministically
    against the rest of the event stream.

    Parameters
    ----------
    host:
        Any :class:`~repro.sim.engine.SimulationHost` whose architecture
        implements the membership hooks (both shipped architectures do).
    window:
        Simulated time between a change's window opening and its commit —
        the modelled coordination cost of the change.  During the window
        the affected replicas reject client operations; the commit may be
        further deferred by open partitions, crashed members or a running
        state transfer.
    """

    def __init__(self, host: SimulationHost, window: float = 5.0) -> None:
        if host.reconfig_manager is not None:
            raise ReconfigurationError("host already has a reconfiguration manager")
        if window < 0:
            raise ReconfigurationError("migration window must be non-negative")
        self.host = host
        host.reconfig_manager = self
        host.transport.enable_sent_log()
        self.window = window
        self._queue: Deque[ReconfigAction] = deque()
        self._active: Optional[ReconfigAction] = None
        self._window_opened_at: Optional[float] = None
        self._affected: FrozenSet[ReplicaId] = frozenset()
        self._deferred = False
        #: Replicas still applying a state-transfer stream: rid -> commit time.
        self._warming: Dict[ReplicaId, float] = {}
        #: Ids that left the configuration; they may not rejoin (their trace
        #: is frozen, and a fresh id keeps every trace unambiguous).
        self._retired: Set[ReplicaId] = set()
        self.epoch_marks: List[EpochMark] = [self._mark()]

    # ------------------------------------------------------------------
    # Declarative installation
    # ------------------------------------------------------------------
    def install(self, schedule: ReconfigSchedule) -> None:
        """Schedule every action as a kernel reconfiguration event."""
        for action in schedule.actions:
            def begin(host: SimulationHost, time: float, action=action) -> None:
                self._begin(action)

            self.host.schedule_reconfig_at(action.time, begin, kind=action.kind)

    # ------------------------------------------------------------------
    # Queries used by the host
    # ------------------------------------------------------------------
    def rejecting(self, replica_id: ReplicaId) -> bool:
        """Client operations at ``replica_id`` are rejected right now.

        True inside a migration window for the replicas the active change
        affects, and at any replica still applying a state-transfer stream.
        """
        if self._active is not None and replica_id in self._affected:
            return True
        return replica_id in self._warming

    @property
    def migrating(self) -> bool:
        """``True`` while a change is between window-open and commit."""
        return self._active is not None

    def warming_replicas(self) -> FrozenSet[ReplicaId]:
        """Replicas whose state-transfer stream has not completed yet."""
        return frozenset(self._warming)

    # ------------------------------------------------------------------
    # Host callbacks
    # ------------------------------------------------------------------
    def note_applies(self, replica_id: ReplicaId, applied: Sequence[Update],
                     now: float) -> None:
        """Close a warming window once its transfer stream has fully applied."""
        started = self._warming.get(replica_id)
        if started is None:
            return
        replica = self.host._replica(replica_id)
        if replica.bootstrapping:
            return
        del self._warming[replica_id]
        metrics = self.host.metrics
        metrics.downtime.setdefault(replica_id, []).append((started, now))
        metrics.reconfig_timeline.append(
            FaultRecord(now, "transfer-complete", f"replica {replica_id}")
        )
        self._maybe_resume()

    def notify_fault_cleared(self) -> None:
        """Called by the fault injector after a heal or restart."""
        self._maybe_resume()

    def finalize_windows(self) -> None:
        """Close still-open windows at the current time (end-of-run report)."""
        now = self.host.now
        metrics = self.host.metrics
        for replica_id, started in sorted(self._warming.items()):
            metrics.downtime.setdefault(replica_id, []).append((started, now))
        self._warming = {rid: now for rid in self._warming}
        if self._active is not None and self._window_opened_at is not None:
            for replica_id in sorted(self._affected):
                metrics.downtime.setdefault(replica_id, []).append(
                    (self._window_opened_at, now)
                )
            metrics.migration_windows.append((self._window_opened_at, now))
            self._window_opened_at = now

    # ------------------------------------------------------------------
    # The epoch protocol
    # ------------------------------------------------------------------
    def _begin(self, action: ReconfigAction) -> None:
        self._queue.append(action)
        self._pump()

    def _pump(self) -> None:
        """Open the next queued change's window, if none is active."""
        if self._active is not None or not self._queue:
            return
        action = self._queue.popleft()
        self._validate(action)
        host = self.host
        self._active = action
        self._window_opened_at = host.now
        self._affected = frozenset(
            rid for rid in self._named_replicas(action) if host.is_member(rid)
        )
        host.metrics.reconfig_timeline.append(
            FaultRecord(host.now, "reconfig-window", action.describe())
        )

        def commit(h: SimulationHost, time: float) -> None:
            self._attempt_commit()

        host.schedule_reconfig_at(host.now + self.window, commit, kind="commit")

    @staticmethod
    def _named_replicas(action: ReconfigAction) -> Tuple[ReplicaId, ...]:
        if action.kind in ("join", "leave"):
            return (action.replica_id,)
        return action.edge

    def _validate(self, action: ReconfigAction) -> None:
        # Structural validation happens in apply_action at commit time,
        # against the placement the change actually applies to; only the
        # retired-id rule needs coordinator state.
        if action.kind == "join" and action.replica_id in self._retired:
            raise ReconfigurationError(
                f"replica id {action.replica_id!r} left the configuration "
                "and may not rejoin; use a fresh id"
            )

    def _blocked(self) -> Optional[str]:
        """Why the active change cannot commit right now (``None`` = go)."""
        host = self.host
        if host.transport.partitioned:
            return "partition open"
        injector = host.fault_injector
        if injector is not None and injector.down_replicas:
            down = ",".join(str(r) for r in sorted(injector.down_replicas))
            return f"members down: {down}"
        if self._warming:
            warming = ",".join(str(r) for r in sorted(self._warming))
            return f"state transfer running: {warming}"
        return None

    def _maybe_resume(self) -> None:
        if self._active is not None:
            if self._deferred:
                self._attempt_commit()
        else:
            self._pump()

    def _attempt_commit(self) -> None:
        if self._active is None:
            return
        reason = self._blocked()
        if reason is not None:
            if not self._deferred:
                self._deferred = True
                self.host.metrics.reconfig_timeline.append(
                    FaultRecord(self.host.now, "reconfig-deferred", reason)
                )
            return
        self._deferred = False
        self._commit(self._active)

    def _commit(self, action: ReconfigAction) -> None:
        host = self.host
        now = host.now
        old_placement = host.share_graph.placement
        new_placement = apply_action(old_placement, action)
        epoch = host.epoch + 1
        change = membership_change_of(old_placement, new_placement, epoch)

        # 1. Complete the old epoch: no old-epoch frame survives the commit.
        self._flush_old_epoch()

        new_graph = ShareGraph.from_placement(new_placement)
        old_ids = set(old_placement.replica_ids)
        new_ids = set(new_placement.replica_ids)
        joiners = sorted(new_ids - old_ids)
        leavers = sorted(old_ids - new_ids)
        gained: Dict[ReplicaId, FrozenSet[Register]] = {
            rid: new_placement.registers_at(rid) - old_placement.registers_at(rid)
            for rid in sorted(new_ids & old_ids)
        }
        transfer: Dict[ReplicaId, FrozenSet[Register]] = {
            rid: new_placement.registers_at(rid) for rid in joiners
        }
        for rid, registers in gained.items():
            if registers:
                transfer[rid] = registers

        # The coordinator's global ↪ order is only built when something
        # needs it: residual pending messages (rare — the flush normally
        # drains everything), or gained registers with actual history (a
        # fresh register's empty stream needs no order).  The common leaf
        # join and plain leave therefore skip the O(total updates) pass.
        traces = host.events_by_replica()
        residual = any(
            host._replica(rid).pending_count() for rid in host._replica_map()
        )
        gained_all = frozenset().union(*transfer.values()) if transfer else frozenset()
        has_history = gained_all and any(
            event.update is not None and event.update.register in gained_all
            for events in traces.values()
            for event in events
        )
        order: Sequence[UpdateId] = ()
        updates: Mapping[UpdateId, Update] = {}
        if residual or has_history:
            order, updates = topological_update_order(traces)
        if residual:
            self._drain_residual(order)

        # 2. Install the new configuration.
        for rid in leavers:
            host._retire_trace(rid)
            host._remove_member(rid)
            host.transport.forget_replica(rid)
            self._retired.add(rid)
        host._migrate_members(new_graph, epoch)
        for rid in joiners:
            self._assign_topology_node(rid, action, new_graph)
            host._add_member(rid, new_graph, epoch)
        host.epoch = epoch
        host.share_graph = new_graph
        host.epoch_history.append((now, new_graph))
        host.transport.restart_delta_streams()

        # 3. Book-keeping: metrics, availability, announcement bytes.
        metrics = host.metrics
        metrics.reconfigs += 1
        metrics.migration_windows.append((self._window_opened_at, now))
        for rid in sorted(self._affected & new_ids):
            metrics.downtime.setdefault(rid, []).append(
                (self._window_opened_at, now)
            )
        frame = encode_membership_change(change)
        host.transport.stats.reconfig_bytes_sent += len(frame) * len(new_ids)
        metrics.reconfig_timeline.append(
            FaultRecord(now, "reconfig-commit", change.describe())
        )

        # 4. State transfer to joiners and register-gainers.
        for rid in sorted(transfer):
            self._send_bootstrap(
                rid, transfer[rid], order, updates, old_placement, epoch
            )

        self.epoch_marks.append(self._mark())
        self._active = None
        self._window_opened_at = None
        self._affected = frozenset()
        self._pump()

    def _assign_topology_node(self, replica_id: ReplicaId,
                              action: ReconfigAction,
                              new_graph: ShareGraph) -> None:
        """Extend a measured delay model's channel table for a joiner.

        Unwraps fate-wrapper chains (``.inner``) to reach the underlying
        model; inert unless that model has an ``assign`` hook (i.e. a
        :class:`~repro.topo.delays.LatencyDelayModel`).  An explicit
        ``action.node`` wins; otherwise the joiner is co-hosted with its
        first already-assigned share-graph neighbor, so schedules that
        predate the knob (``random_churn_schedule``) keep working.
        """
        model = self.host.transport.delay_model
        while not hasattr(model, "assign") and hasattr(model, "inner"):
            model = model.inner
        if not hasattr(model, "assign"):
            return
        node = action.node
        if node is None:
            for peer in sorted(new_graph.neighbors(replica_id)):
                peer_node = model.node_of(peer)
                if peer_node is not None:
                    node = peer_node
                    break
        if node is None:
            raise ReconfigurationError(
                f"cannot place joiner {replica_id!r} on topology "
                f"{model.topology.name!r}: no node given and no assigned "
                "share-graph neighbor to co-host with"
            )
        model.assign(replica_id, node)

    # ------------------------------------------------------------------
    # Commit phases
    # ------------------------------------------------------------------
    def _flush_old_epoch(self) -> None:
        """Deliver every undelivered old-epoch message at the boundary.

        The virtual-synchrony flush: open batching windows are closed,
        scheduled deliveries are extracted from the kernel in firing order,
        parked (held) traffic is released, and unacknowledged reliability
        copies are delivered directly.  Deliveries can produce new traffic
        (a served client write multicasts), so the loop repeats — with the
        apply/serve fixpoint folded in — until the old epoch is quiescent.
        """
        host = self.host
        transport = host.transport
        progress = True
        while progress:
            progress = False
            transport.flush_open_batches()
            for event in host.kernel.extract(
                lambda e: isinstance(e, (DeliveryEvent, BatchDeliveryEvent))
            ):
                progress = True
                self._deliver_flushed(event)
            # Parked (held/partitioned) traffic is claimed on *every*
            # iteration: a serve unblocked by the flush can multicast new
            # old-epoch messages onto a still-held channel, and leaving
            # them parked would strand them as stale frames after the
            # epoch bump.
            for sent_at, message in transport.take_held_messages():
                progress = True
                self._deliver_flushed(DeliveryEvent(message, sent_at=sent_at))
            for sent_at, sent_times, batch, epoch in transport.take_held_batches():
                progress = True
                self._deliver_flushed(
                    BatchDeliveryEvent(
                        batch=batch, sent_at=sent_at,
                        sent_times=sent_times, epoch=epoch,
                    )
                )
            for sent_at, message in transport.take_outstanding():
                progress = True
                self._deliver_flushed(DeliveryEvent(message, sent_at=sent_at))
            if host._apply_fixpoint():
                progress = True

    def _deliver_flushed(self, event) -> None:
        host = self.host
        transport = host.transport
        if isinstance(event, DeliveryEvent):
            transport.record_delivery(event, host.now)
            host._deliver(event.message)
        else:
            if transport.batch_is_stale(event):
                transport.note_stale_batch(event)
                return
            transport.record_batch_delivery(event, host.now)
            host._deliver_batch(event.batch)

    def _drain_residual(self, order: Sequence[UpdateId]) -> None:
        """Apply messages still pending after the flush, in coordinator order.

        Normally a no-op: the flush plus the fixpoint drain every buffer.
        A message can stay blocked only when the edges that certify its
        dependencies are about to disappear with the change; the
        coordinator — which knows the global ``↪`` order — applies those in
        a causally valid sequence instead of leaving them stranded.
        """
        host = self.host
        position = {uid: index for index, uid in enumerate(order)}
        for rid in sorted(host._replica_map()):
            replica = host._replica(rid)
            if not replica.pending_count():
                continue
            buffered = {
                message.update.uid: message
                for message in replica.pending
                if message.update.uid in replica._pending_uids
            }
            for uid in sorted(buffered, key=lambda u: position.get(u, len(position))):
                replica.force_apply(buffered[uid], host.now)
                host.metrics.reconfig_forced_applies += 1
                host.metrics.applies += 1
                host.metrics.apply_times.append(host.now)
        host._apply_fixpoint()

    def _send_bootstrap(
        self,
        replica_id: ReplicaId,
        registers: FrozenSet[Register],
        order: Sequence[UpdateId],
        updates: Mapping[UpdateId, Update],
        old_placement: RegisterPlacement,
        epoch: int,
    ) -> None:
        """Replay the gained registers' history as a gated transfer stream.

        A replica that *re-gains* a register it once stored already holds a
        prefix of that history durably; those updates are excluded from the
        stream (the replica's duplicate suppression would drop them on
        receive, which would strand the stream's position counter and leave
        the bootstrap gate closed forever).
        """
        host = self.host
        replica = host._replica(replica_id)
        known = replica.known_update_ids()
        stream = [
            updates[uid] for uid in order
            if updates[uid].register in registers and uid not in known
        ]
        if not stream:
            return
        replica.begin_bootstrap(len(stream))
        self._warming[replica_id] = host.now
        host.metrics.reconfig_timeline.append(
            FaultRecord(
                host.now, "transfer-start",
                f"replica {replica_id}: {len(stream)} updates",
            )
        )
        members = [rid for rid in sorted(host._replica_map()) if rid != replica_id]
        for index, update in enumerate(stream):
            sponsor = self._sponsor(update, replica_id, old_placement, members)
            host.network.send(
                UpdateMessage(
                    update=update,
                    sender=sponsor,
                    destination=replica_id,
                    metadata=BootstrapMetadata(
                        index=index, total=len(stream), epoch=epoch
                    ),
                    metadata_size=0,
                    payload=True,
                    epoch=epoch,
                )
            )

    @staticmethod
    def _sponsor(update: Update, destination: ReplicaId,
                 old_placement: RegisterPlacement,
                 members: Sequence[ReplicaId]) -> ReplicaId:
        """The member that replays one history update to a gainer.

        Prefers the lowest-id surviving member that stored the register in
        the old configuration (it durably holds the update); falls back to
        the lowest-id member, standing in for the coordinator's own log.
        """
        try:
            owners = old_placement.replicas_storing(update.register)
        except Exception:
            owners = ()
        for rid in owners:
            if rid != destination and rid in members:
                return rid
        return members[0]

    # ------------------------------------------------------------------
    # Epoch traffic marks (E17)
    # ------------------------------------------------------------------
    def _mark(self) -> EpochMark:
        host = self.host
        stats = host.transport.stats
        return EpochMark(
            epoch=host.epoch,
            time=host.now,
            share_graph=host.share_graph,
            messages_sent=stats.messages_sent,
            timestamp_bytes_sent=stats.timestamp_bytes_sent,
            metadata_counters_sent=stats.metadata_counters_sent,
        )

    def epoch_segments(self) -> List[Dict[str, object]]:
        """Per-epoch traffic deltas between consecutive boundary marks.

        The last segment runs from the final commit to *now*.  Each entry
        reports the epoch, its share graph, and the messages / timestamp
        bytes / metadata counters sent while it was active — the data E17
        compares against each configuration's closed-form bound.
        """
        marks = self.epoch_marks + [self._mark()]
        segments: List[Dict[str, object]] = []
        for previous, current in zip(marks[:-1], marks[1:]):
            segments.append(
                {
                    "epoch": previous.epoch,
                    "share_graph": previous.share_graph,
                    "start": previous.time,
                    "end": current.time,
                    "messages": current.messages_sent - previous.messages_sent,
                    "timestamp_bytes": (
                        current.timestamp_bytes_sent - previous.timestamp_bytes_sent
                    ),
                    "counters": (
                        current.metadata_counters_sent
                        - previous.metadata_counters_sent
                    ),
                }
            )
        return segments
