"""The unified discrete-event simulation kernel.

Both simulated architectures of the paper — the peer-to-peer deployment of
Figure 1a (:class:`~repro.sim.cluster.Cluster`) and the client–server
deployment of Figure 1b (:class:`~repro.clientserver.cluster.ClientServerCluster`)
— are thin protocol adapters over the machinery in this module:

* a typed event queue (:class:`EventKernel`) holding message deliveries,
  timers and open-loop client arrivals, popped in global time order;
* a :class:`Transport` that samples per-message delays from a pluggable
  :class:`~repro.sim.delays.DelayModel`, supports the adversarial
  hold/release channel control used by the necessity experiments, and keeps
  the traffic statistics (:class:`NetworkStats`);
* a :class:`SimulationHost` base class providing the drive loop —
  :meth:`~SimulationHost.step`, :meth:`~SimulationHost.run_until_quiescent`
  with a cross-replica apply fixpoint — and the unified run metrics
  (:class:`RunMetrics`: throughput over time, latency percentiles,
  per-replica queue depths) shared by the metrics module, the evaluation
  harness and the benchmarks.

The host-agnostic half of the old ``SimulationHost`` — replica bookkeeping,
metric recording, event-trace collection and consistency checking — lives in
:class:`repro.core.host.ReplicaHost`, which the live asyncio runtime
(:mod:`repro.net`) shares; this module re-exports those names
(:class:`RunMetrics`, :class:`LatencySummary`, :func:`throughput_timeline`,
:class:`QueueDepthSample`, :class:`QueueDepthStats`, :class:`FaultRecord`)
so existing imports keep working.

Hosts plug in by implementing :meth:`SimulationHost._replica_map` (who owns
which replica id) and :meth:`SimulationHost.submit_operation` (how a client
operation addressed to a replica is executed), plus optional hooks for
architecture-specific work after a delivery or at quiescence.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from ..core.errors import ConfigurationError, SimulationError
from ..core.host import (
    FaultRecord,
    LatencySummary,
    QueueDepthSample,
    QueueDepthStats,
    ReplicaHost,
    RunMetrics,
    throughput_timeline,
)
from ..core.protocol import UpdateId, UpdateMessage
from ..core.registers import ReplicaId
from ..core.share_graph import ShareGraph
from ..wire.batch import MessageBatch, encode_batch
from ..wire.channel import ChannelDeltaEncoder
from ..wire.frames import WireSizes, message_wire_sizes
from .delays import Channel, DelayModel, UniformDelay

__all__ = [
    "ArrivalEvent",
    "BatchDeliveryEvent",
    "BatchingConfig",
    "ChannelWireStats",
    "DeliveryEvent",
    "EventKernel",
    "FaultEvent",
    "FaultRecord",
    "Firing",
    "LatencySummary",
    "NetworkStats",
    "QueueDepthSample",
    "QueueDepthStats",
    "ReconfigEvent",
    "ReliabilityConfig",
    "ReplicaHost",
    "RunMetrics",
    "SimulationHost",
    "TimerEvent",
    "Transport",
    "throughput_timeline",
]


# ======================================================================
# Events
# ======================================================================
# All event classes are slotted: a long open-loop run schedules millions of
# them, and the per-instance ``__dict__`` would dominate the heap.

@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """A message arriving at its destination replica."""

    message: UpdateMessage
    sent_at: float


@dataclass(frozen=True, slots=True)
class BatchDeliveryEvent:
    """A whole per-channel message batch arriving as one kernel event.

    ``sent_at`` is the flush (wire) time; ``sent_times`` records when each
    contained message entered the batching window, so per-message latency
    accounting includes the window wait.  ``epoch`` is the channel's stream
    epoch at encode time: a crash severs the channel's byte stream (the
    peer's decoder state dies with it), and a batch from a stale epoch is
    discarded on arrival exactly as a broken TCP connection would drop its
    in-flight data — its contents come back via retransmission/resync.
    """

    batch: MessageBatch
    sent_at: float
    sent_times: Tuple[float, ...]
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class TimerEvent:
    """A scheduled callback, e.g. a metrics sampler.

    The callback is invoked as ``callback(host, time)`` when the event
    fires.
    """

    callback: Callable[["SimulationHost", float], None]
    tag: str = ""


@dataclass(frozen=True, slots=True)
class ArrivalEvent:
    """An open-loop client operation arriving at its scheduled time.

    ``operation`` is opaque to the kernel; the host's
    :meth:`SimulationHost.submit_operation` interprets it (normally a
    :class:`~repro.sim.workloads.Operation`).
    """

    operation: Any


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """A scheduled fault action (crash, restart, partition, heal, …).

    Faults are first-class kernel events so a fault schedule replays
    deterministically against the rest of the event stream.  The action is
    invoked as ``action(host, time)`` when the event fires; the
    :class:`~repro.sim.faults.FaultInjector` builds these from a declarative
    :class:`~repro.sim.faults.FaultSchedule`.
    """

    action: Callable[["SimulationHost", float], None]
    kind: str = ""


@dataclass(frozen=True, slots=True)
class ReconfigEvent:
    """A scheduled reconfiguration step (window open, epoch commit).

    Like faults, reconfigurations are first-class kernel events, so a
    membership-change schedule replays deterministically against the rest
    of the event stream.  The action is invoked as ``action(host, time)``;
    the :class:`~repro.sim.reconfig.ReconfigManager` builds these from a
    declarative :class:`~repro.sim.reconfig.ReconfigSchedule`.
    """

    action: Callable[["SimulationHost", float], None]
    kind: str = ""


Event = Any  # DeliveryEvent | BatchDeliveryEvent | TimerEvent | ArrivalEvent | FaultEvent | ReconfigEvent

#: Tie-break order for events scheduled at the same instant: faults first
#: (a crash at time t suppresses a delivery at time t), then
#: reconfiguration steps (a commit at time t flushes a delivery scheduled
#: at time t into the old epoch), then deliveries (so arrivals and samplers
#: observe the freshest replica state), then arrivals, then timers.
_EVENT_PRIORITY: Dict[type, int] = {
    FaultEvent: 0,
    ReconfigEvent: 1,
    DeliveryEvent: 2,
    BatchDeliveryEvent: 2,
    ArrivalEvent: 3,
    TimerEvent: 4,
}


@dataclass(frozen=True, slots=True)
class Firing:
    """One event popped from the kernel."""

    time: float
    event: Event


class EventKernel:
    """A priority queue of typed events sharing one simulated clock.

    Events fire in ``(time, priority, insertion order)`` order, so two runs
    that schedule the same events observe identical executions — the basis
    of every same-seed determinism guarantee in the simulator.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, event: Event) -> None:
        """Schedule ``event`` to fire at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} < now ({self.now})"
            )
        priority = _EVENT_PRIORITY.get(type(event), 5)
        heapq.heappush(self._heap, (time, priority, next(self._counter), event))

    def schedule_after(self, delay: float, event: Event) -> None:
        """Schedule ``event`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative event delay: {delay}")
        self.schedule_at(self.now + delay, event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def has_events(self) -> bool:
        """``True`` while any event remains scheduled."""
        return bool(self._heap)

    def pending_events(self) -> int:
        """Total scheduled, not-yet-fired events."""
        return len(self._heap)

    def pending_of(self, event_type: Type) -> int:
        """Scheduled events of one type (linear scan; for tests/metrics)."""
        return sum(1 for entry in self._heap if isinstance(entry[3], event_type))

    def events_of(self, event_type: Type) -> List[Event]:
        """Scheduled events of one type, in heap (not firing) order."""
        return [entry[3] for entry in self._heap if isinstance(entry[3], event_type)]

    def peek_time(self) -> Optional[float]:
        """The firing time of the next event, or ``None`` when idle."""
        return self._heap[0][0] if self._heap else None

    def peek_event(self) -> Optional[Event]:
        """The next event without popping it, or ``None`` when idle."""
        return self._heap[0][3] if self._heap else None

    def extract(self, predicate: Callable[[Event], bool]) -> List[Event]:
        """Remove every scheduled event matching ``predicate`` from the queue.

        Returns the extracted events in their would-have-fired order
        (time, priority, insertion), without advancing the clock.  Used by
        the reconfiguration commit to flush the old epoch's in-flight
        deliveries at the epoch boundary; determinism is preserved because
        the extraction order is the firing order.
        """
        matched: List[Tuple[float, int, int, Event]] = []
        kept: List[Tuple[float, int, int, Event]] = []
        for entry in self._heap:
            if predicate(entry[3]):
                matched.append(entry)
            else:
                kept.append(entry)
        if matched:
            heapq.heapify(kept)
            self._heap = kept
        return [entry[3] for entry in sorted(matched)]

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def next_event(self) -> Optional[Firing]:
        """Pop the earliest event, advancing the simulated clock."""
        if not self._heap:
            return None
        time, _, _, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("simulation time went backwards")
        self.now = time
        return Firing(time=time, event=event)


# ======================================================================
# Transport
# ======================================================================

@dataclass
class ChannelWireStats:
    """Byte-accurate per-channel traffic accounting (wire accounting on)."""

    messages: int = 0
    batches: int = 0
    header_bytes: int = 0
    timestamp_bytes: int = 0
    payload_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All bytes put on this channel."""
        return self.header_bytes + self.timestamp_bytes + self.payload_bytes


@dataclass
class NetworkStats:
    """Aggregate traffic statistics maintained by the transport."""

    messages_sent: int = 0
    messages_delivered: int = 0
    metadata_counters_sent: int = 0
    payload_messages_sent: int = 0
    metadata_only_messages_sent: int = 0
    total_latency: float = 0.0
    #: Message copies the (lossy) channel discarded before delivery.
    messages_dropped: int = 0
    #: Extra copies injected by a duplicating channel.
    messages_duplicated: int = 0
    #: Copies re-sent by the ack/resend reliability layer.
    retransmissions: int = 0
    #: Deliveries discarded because the destination replica was crashed.
    messages_lost_to_crash: int = 0
    #: Frames rejected at delivery because their epoch tag predates the
    #: receiver's configuration (dynamic membership; content recovery is
    #: the retransmission/resync layers' job).
    messages_rejected_stale_epoch: int = 0
    #: Bytes of membership-change announcements broadcast by the
    #: reconfiguration coordinator (the membership codec's frames).
    reconfig_bytes_sent: int = 0
    # -- wire layer ------------------------------------------------------
    #: Batches flushed onto the wire, and the messages they carried.
    batches_sent: int = 0
    batched_messages_sent: int = 0
    #: Whole batches discarded by a lossy channel fate.
    batches_dropped: int = 0
    #: Byte-accurate split of the traffic (populated when wire accounting
    #: is enabled): envelope/identity bytes vs. timestamp-frame bytes vs.
    #: payload-value bytes.
    header_bytes_sent: int = 0
    timestamp_bytes_sent: int = 0
    payload_bytes_sent: int = 0
    #: What the timestamp frames would have cost without delta encoding.
    timestamp_bytes_full: int = 0
    #: Timestamp frames shipped as per-channel deltas vs. in full.
    delta_frames_sent: int = 0
    full_frames_sent: int = 0
    #: Per-channel byte breakdown, keyed by (sender, destination).
    per_channel: Dict[Channel, ChannelWireStats] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency over all delivered messages."""
        if not self.messages_delivered:
            return 0.0
        return self.total_latency / self.messages_delivered

    @property
    def bytes_sent(self) -> int:
        """Total bytes put on the wire (header + timestamp + payload)."""
        return self.header_bytes_sent + self.timestamp_bytes_sent + self.payload_bytes_sent

    @property
    def timestamp_delta_savings(self) -> float:
        """Fraction of full-encoding timestamp bytes saved by delta frames."""
        if not self.timestamp_bytes_full:
            return 0.0
        return 1.0 - self.timestamp_bytes_sent / self.timestamp_bytes_full

    def account_wire(self, channel: Channel, sizes: WireSizes,
                     messages: int, batches: int = 0) -> None:
        """Fold one encoded frame/envelope into the aggregate and per-channel books."""
        self.header_bytes_sent += sizes.header_bytes
        self.timestamp_bytes_sent += sizes.timestamp_bytes
        self.payload_bytes_sent += sizes.payload_bytes
        self.timestamp_bytes_full += sizes.timestamp_bytes_full
        self.delta_frames_sent += sizes.delta_frames
        self.full_frames_sent += sizes.full_frames
        per_channel = self.per_channel.setdefault(channel, ChannelWireStats())
        per_channel.messages += messages
        per_channel.batches += batches
        per_channel.header_bytes += sizes.header_bytes
        per_channel.timestamp_bytes += sizes.timestamp_bytes
        per_channel.payload_bytes += sizes.payload_bytes


@dataclass(frozen=True)
class BatchingConfig:
    """Parameters of the transport's per-channel batching window.

    With batching enabled, every message sent on a (sender, destination)
    channel joins that channel's open window; the window is flushed as one
    :class:`~repro.wire.batch.MessageBatch` — delivered as a *single*
    kernel event — when it reaches ``max_messages`` or when its
    ``max_delay`` kernel-time deadline (armed by the first message) fires,
    whichever comes first.

    Batched channels behave like one FIFO byte stream per channel (batches
    on a channel never overtake each other), which is what makes the
    cross-batch timestamp delta encoding (``delta_encoding=True``) sound.
    Enabling batching implies wire accounting: every flush is encoded
    through :mod:`repro.wire` and booked into :class:`NetworkStats` in real
    bytes.
    """

    max_messages: int = 16
    max_delay: float = 1.0
    delta_encoding: bool = True

    def __post_init__(self) -> None:
        if self.max_messages < 1:
            raise ConfigurationError("batching max_messages must be at least 1")
        if self.max_delay < 0:
            raise ConfigurationError("batching max_delay must be non-negative")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Parameters of the transport's ack + resend-timer reliability layer.

    With the layer enabled, every non-parked send arms a resend timer; an
    actual delivery acknowledges the message (after ``ack_delay``), and an
    unacknowledged message is retransmitted up to ``max_retries`` times.
    The final attempt bypasses the loss sampler (the channel is fair-lossy),
    so a lossy/duplicating channel still delivers every message to a live
    destination — the protocol layer's duplicate suppression then restores
    the paper's exactly-once delivery assumption end to end.
    """

    resend_timeout: float = 30.0
    max_retries: int = 8
    ack_delay: float = 0.0


class Transport:
    """Point-to-point channels over an event kernel.

    Samples a delay for every message from the :class:`DelayModel` and
    schedules the corresponding :class:`DeliveryEvent`.  Channels are
    reliable and non-FIFO by default, with three fault-subsystem extensions
    (all inert unless enabled):

    * channels can be held (parking all traffic) and released, as the
      adversarial schedules of the necessity experiments require, and the
      replica set can be *partitioned* into isolated groups — a parked
      message flies once **both** its explicit hold is released and no
      partition separates its endpoints;
    * lossy/duplicating delay-model wrappers
      (:class:`~repro.sim.delays.LossyDelay`,
      :class:`~repro.sim.delays.DuplicatingDelay`) are honoured per send,
      with an ack + resend-timer reliability layer
      (:meth:`enable_reliability`) restoring at-least-once delivery;
    * a durable per-destination sent-log (:meth:`enable_sent_log`) supports
      the crash-recovery anti-entropy exchange (:meth:`resync`).
    """

    def __init__(
        self,
        kernel: EventKernel,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel
        self.delay_model = delay_model or UniformDelay()
        self.rng = random.Random(seed)
        self.stats = NetworkStats()
        #: Multiplier applied to every sampled latency (latency-spike faults).
        self.delay_factor: float = 1.0
        self._held_channels: Set[Channel] = set()
        self._held_messages: List[Tuple[float, UpdateMessage]] = []
        #: Parked batches: (flush time, per-message send times, batch, epoch).
        self._held_batches: List[Tuple[float, Tuple[float, ...], MessageBatch, int]] = []
        self._partition_groups: Optional[Tuple[FrozenSet[ReplicaId], ...]] = None
        self._partition_lookup: Dict[ReplicaId, int] = {}
        self._reliability: Optional[ReliabilityConfig] = None
        #: Unacknowledged tracked messages: (uid, destination) -> (sent_at, message).
        self._outstanding: Dict[Tuple[UpdateId, ReplicaId], Tuple[float, UpdateMessage]] = {}
        self._acked: Set[Tuple[UpdateId, ReplicaId]] = set()
        #: Messages already delivered whose (delayed) ack has not fired yet;
        #: still in ``_outstanding``, but they need no re-delivery.
        self._pending_acks: Set[Tuple[UpdateId, ReplicaId]] = set()
        #: Per-destination durable outbox (crash resync); None = disabled.
        self._sent_log: Optional[Dict[ReplicaId, Dict[UpdateId, Tuple[float, UpdateMessage]]]] = None
        # -- wire layer ------------------------------------------------
        self._batching: Optional[BatchingConfig] = None
        self._wire_accounting: bool = False
        self._delta_encoder: Optional[ChannelDeltaEncoder] = None
        #: Resolves a message to its family codec via the sending replica;
        #: installed by the host once the replicas exist.
        self._codec_resolver: Optional[Callable[[UpdateMessage], Any]] = None
        #: Open batching windows: channel -> [(send time, message), …].
        self._open_batches: Dict[Channel, List[Tuple[float, UpdateMessage]]] = {}
        #: Per-channel flush sequence numbers and deadline-timer generations.
        self._batch_seq: Dict[Channel, int] = {}
        self._flush_generation: Dict[Channel, int] = {}
        #: Last scheduled batch-arrival time per channel (the FIFO clamp).
        self._last_batch_arrival: Dict[Channel, float] = {}
        #: Per-channel stream epoch, bumped when a crash severs the stream
        #: (see :class:`BatchDeliveryEvent`).
        self._channel_epoch: Dict[Channel, int] = {}
        #: The attached :class:`~repro.obs.trace.TraceRecorder`, if any;
        #: ``None`` on the untraced fast path.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # Fault-subsystem configuration
    # ------------------------------------------------------------------
    def enable_reliability(self, config: Optional[ReliabilityConfig] = None) -> None:
        """Turn on the ack + resend-timer layer (idempotent)."""
        self._reliability = config or ReliabilityConfig()

    # ------------------------------------------------------------------
    # Wire-layer configuration
    # ------------------------------------------------------------------
    def enable_wire_accounting(self) -> None:
        """Book every sent message/batch into the byte-accurate statistics.

        Off by default: the fault-free fast path then never touches the
        codecs.  Enabling batching turns this on implicitly.
        """
        self._wire_accounting = True

    def enable_batching(self, config: Optional[BatchingConfig] = None) -> None:
        """Turn on per-channel batching windows (implies wire accounting)."""
        self._batching = config or BatchingConfig()
        self._wire_accounting = True
        if self._batching.delta_encoding and self._delta_encoder is None:
            self._delta_encoder = ChannelDeltaEncoder()

    def set_codec_resolver(
        self, resolver: Optional[Callable[[UpdateMessage], Any]]
    ) -> None:
        """Install the message → family-codec resolver (host-provided)."""
        self._codec_resolver = resolver

    @property
    def batching(self) -> Optional[BatchingConfig]:
        """The active batching configuration, or ``None``."""
        return self._batching

    def _codec_for(self, message: UpdateMessage) -> Any:
        if self._codec_resolver is None:
            return None
        return self._codec_resolver(message)

    def _account_single(self, message: UpdateMessage) -> None:
        """Book one standalone (full-frame) envelope, if accounting is on.

        Used by the unbatched send path and by every retransmission/resync
        re-send, so ``NetworkStats`` byte totals cover *all* copies put on
        the wire — per-channel message counts therefore include
        retransmitted copies.
        """
        if not self._wire_accounting:
            return
        sizes = message_wire_sizes(message, codec=self._codec_for(message))
        self.stats.account_wire(
            (message.sender, message.destination), sizes, messages=1
        )

    def enable_sent_log(self) -> None:
        """Start retaining every sent message per destination (idempotent).

        Required by :meth:`resync`; off by default so fault-free runs keep
        no per-message state.
        """
        if self._sent_log is None:
            self._sent_log = {}

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: UpdateMessage, delay: Optional[float] = None) -> None:
        """Inject a message; it will be delivered after its sampled delay.

        ``delay`` overrides the delay model for this single message (used by
        scripted adversarial schedules); such messages bypass the batching
        window, exactly as an out-of-band control message would.
        """
        self.stats.messages_sent += 1
        self.stats.metadata_counters_sent += message.metadata_size
        if message.payload:
            self.stats.payload_messages_sent += 1
        else:
            self.stats.metadata_only_messages_sent += 1

        if self._sent_log is not None:
            destination_log = self._sent_log.setdefault(message.destination, {})
            destination_log[message.update.uid] = (self.kernel.now, message)

        if self.tracer is not None:
            self.tracer.record("send", message.update.uid, message.sender,
                               message.destination, self.kernel.now)

        if self._batching is not None and delay is None:
            self._enqueue_for_batch(message)
            return

        channel = (message.sender, message.destination)
        # Unbatched messages ship as standalone envelopes with full
        # timestamp frames (delta frames need the per-channel FIFO stream
        # only the batching transport provides).  No window means the copy
        # hits the wire immediately: its ``wire`` stamp equals its ``send``.
        if self.tracer is not None:
            self.tracer.record("wire", message.update.uid, message.sender,
                               message.destination, self.kernel.now)
        self._account_single(message)
        if self._blocked(channel):
            self._held_messages.append((self.kernel.now, message))
            return
        self._transmit(message, sent_at=self.kernel.now, delay=delay)

    def send_all(self, messages: Iterable[UpdateMessage]) -> None:
        """Send a batch of messages."""
        for message in messages:
            self.send(message)

    # ------------------------------------------------------------------
    # Per-channel batching windows
    # ------------------------------------------------------------------
    def _enqueue_for_batch(self, message: UpdateMessage) -> None:
        """Add a message to its channel's open window, flushing when full."""
        channel = (message.sender, message.destination)
        window = self._open_batches.setdefault(channel, [])
        window.append((self.kernel.now, message))
        if len(window) >= self._batching.max_messages:
            self._flush_channel(channel)
            return
        if len(window) == 1:
            # First message arms the kernel-time flush deadline.  The
            # generation guard makes a stale timer (window already flushed
            # by count) a no-op without unscheduling anything.
            generation = self._flush_generation.get(channel, 0)

            def fire(host: "SimulationHost", time: float,
                     channel=channel, generation=generation) -> None:
                if self._flush_generation.get(channel, 0) == generation:
                    self._flush_channel(channel)

            self.kernel.schedule_after(
                self._batching.max_delay, TimerEvent(callback=fire, tag="batch-flush")
            )

    def _flush_channel(self, channel: Channel) -> None:
        """Close a channel's window and put the batch on the wire."""
        window = self._open_batches.pop(channel, None)
        if not window:
            return
        self._flush_generation[channel] = self._flush_generation.get(channel, 0) + 1
        seq = self._batch_seq.get(channel, 0)
        self._batch_seq[channel] = seq + 1
        sent_times = tuple(sent_at for sent_at, _ in window)
        batch = MessageBatch(
            sender=channel[0],
            destination=channel[1],
            seq=seq,
            messages=tuple(message for _, message in window),
        )
        # Encoding happens exactly once, at flush, in send order — the
        # sender side of the per-channel FIFO stream the delta frames
        # assume.  A parked batch has already consumed its encoder state.
        epoch = self._channel_epoch.get(channel, 0)
        _, sizes = encode_batch(
            batch,
            encoder=self._delta_encoder,
            codec=self._codec_for(batch.messages[0]),
        )
        self.stats.batches_sent += 1
        self.stats.batched_messages_sent += len(batch.messages)
        self.stats.account_wire(channel, sizes, messages=len(batch.messages), batches=1)
        if self.tracer is not None:
            for message in batch.messages:
                self.tracer.record("wire", message.update.uid, channel[0],
                                   channel[1], self.kernel.now)
        if self._reliability is not None:
            for sent_at, message in window:
                self._track(message, sent_at)
        if self._blocked(channel):
            self._held_batches.append((self.kernel.now, sent_times, batch, epoch))
            return
        self._transmit_batch(batch, sent_times, sent_at=self.kernel.now, epoch=epoch)

    def flush_open_batches(self) -> None:
        """Force-flush every open window (tests and explicit shutdown)."""
        for channel in list(self._open_batches):
            self._flush_channel(channel)

    @property
    def open_batch_messages(self) -> int:
        """Messages waiting in not-yet-flushed batching windows."""
        return sum(len(window) for window in self._open_batches.values())

    def _transmit_batch(self, batch: MessageBatch, sent_times: Tuple[float, ...],
                        sent_at: float, epoch: int = 0,
                        force: bool = False) -> None:
        """Sample the channel fate for a flushed batch and schedule it."""
        if force:
            copies = 1
        else:
            copies = self.delay_model.fate(batch.messages[0], self.rng)
        if copies <= 0:
            # The whole envelope is lost; with the reliability layer on the
            # per-message resend timers recover the contents as singles
            # (full frames).  The channel's delta stream restarts so the
            # next flushed frame never chains through bytes the receiver
            # cannot have — every delivered delta frame stays decodable.
            self.stats.batches_dropped += 1
            self.stats.messages_dropped += len(batch.messages)
            if self._delta_encoder is not None:
                self._delta_encoder.reset(batch.channel)
            return
        if copies > 1:
            self.stats.messages_duplicated += (copies - 1) * len(batch.messages)
        for _ in range(copies):
            self._schedule_batch(batch, sent_times, sent_at=sent_at, epoch=epoch)

    def _schedule_batch(self, batch: MessageBatch, sent_times: Tuple[float, ...],
                        sent_at: float, epoch: int = 0) -> None:
        """Schedule a batch delivery, clamped to per-channel FIFO order.

        Batches on one channel model a single byte stream (one TCP
        connection): a later batch never overtakes an earlier one, however
        the delays are sampled.
        """
        latency = self.delay_model.delay(batch.messages[0], self.rng) * self.delay_factor
        if latency < 0:
            raise SimulationError(f"negative message delay: {latency}")
        arrival = max(
            self.kernel.now + latency,
            self._last_batch_arrival.get(batch.channel, 0.0),
        )
        self._last_batch_arrival[batch.channel] = arrival
        self.kernel.schedule_at(
            arrival,
            BatchDeliveryEvent(
                batch=batch, sent_at=sent_at, sent_times=sent_times, epoch=epoch
            ),
        )

    def _transmit(self, message: UpdateMessage, sent_at: float,
                  delay: Optional[float] = None, force: bool = False) -> None:
        """First wire attempt: put on the wire, arm the reliability layer."""
        self._put_on_wire(message, sent_at=sent_at, delay=delay, force=force)
        if self._reliability is not None:
            self._track(message, sent_at)

    def _put_on_wire(self, message: UpdateMessage, sent_at: float,
                     delay: Optional[float] = None, force: bool = False) -> None:
        """Sample the channel fate and schedule the resulting copies.

        ``force=True`` bypasses the loss/duplication sampler (used by the
        final retransmission attempt and by scripted-delay sends).
        """
        if delay is not None or force:
            copies = 1
        else:
            copies = self.delay_model.fate(message, self.rng)
        if copies <= 0:
            self.stats.messages_dropped += 1
            return
        if copies > 1:
            self.stats.messages_duplicated += copies - 1
        for _ in range(copies):
            self._schedule(message, sent_at=sent_at, delay=delay)

    def _schedule(self, message: UpdateMessage, sent_at: float,
                  delay: Optional[float] = None) -> None:
        if delay is None:
            latency = self.delay_model.delay(message, self.rng) * self.delay_factor
        else:
            latency = delay
        if latency < 0:
            raise SimulationError(f"negative message delay: {latency}")
        self.kernel.schedule_after(latency, DeliveryEvent(message, sent_at=sent_at))

    def _note_message_delivered(self, message: UpdateMessage, sent_at: float,
                                time: float) -> None:
        """Per-message delivery bookkeeping shared by singles and batches."""
        self.stats.messages_delivered += 1
        self.stats.total_latency += time - sent_at
        if self._reliability is not None:
            key = (message.update.uid, message.destination)
            if self._reliability.ack_delay > 0 and key not in self._acked:
                self._pending_acks.add(key)

                def ack(host: "SimulationHost", ack_time: float, key=key) -> None:
                    self._acknowledge(key)
                self.kernel.schedule_after(
                    self._reliability.ack_delay, TimerEvent(callback=ack, tag="ack")
                )
            else:
                self._acknowledge(key)

    def record_delivery(self, event: DeliveryEvent, time: float) -> None:
        """Account for one fired :class:`DeliveryEvent` in the statistics."""
        self._note_message_delivered(event.message, event.sent_at, time)
        if self.tracer is not None:
            message = event.message
            self.tracer.record("deliver", message.update.uid, message.sender,
                               message.destination, time)

    def record_batch_delivery(self, event: BatchDeliveryEvent, time: float) -> None:
        """Account for every message of a delivered batch.

        Each message's latency runs from when it entered the batching
        window, so the window wait is part of the measured delivery latency
        (the cost side of the batching trade-off).
        """
        for message, sent_at in zip(event.batch.messages, event.sent_times):
            self._note_message_delivered(message, sent_at, time)
        if self.tracer is not None:
            for message in event.batch.messages:
                self.tracer.record("deliver", message.update.uid,
                                   message.sender, message.destination, time)

    def note_lost_delivery(self, event: DeliveryEvent) -> None:
        """Account for a delivery discarded because its destination is down.

        The message is deliberately *not* acknowledged: with the reliability
        layer on it will be retransmitted, and the crash-recovery resync
        covers it otherwise.
        """
        self.stats.messages_lost_to_crash += 1

    def note_lost_batch(self, event: BatchDeliveryEvent) -> None:
        """Account for a whole batch discarded at a crashed destination.

        The crash severs the channel's byte stream: the epoch bump makes
        every batch still in flight on this channel stale (it dies on
        arrival, like in-flight data of a broken TCP connection), and the
        delta encoder restarts so frames flushed after this point go full
        until a new chain builds up.  Content recovery is the
        retransmission/resync layer's job — those paths re-send full-frame
        singles — so every batch that *is* delivered chains only through
        delivered predecessors.
        """
        channel = event.batch.channel
        self.stats.messages_lost_to_crash += len(event.batch.messages)
        if event.epoch == self._channel_epoch.get(channel, 0):
            # A live-stream batch hit a crashed peer the fault layer had
            # not already severed (hosts without a FaultInjector); cut the
            # stream here.  A batch from an already-severed epoch must not
            # bump again — the successor stream is live.
            self._sever_channel(channel)

    def _sever_channel(self, channel: Channel) -> None:
        self._channel_epoch[channel] = self._channel_epoch.get(channel, 0) + 1
        if self._delta_encoder is not None:
            self._delta_encoder.reset(channel)

    def sever_streams(self, replica_id: ReplicaId) -> None:
        """Sever the batched streams broken by a replica crash.

        Called by the fault layer at crash time.  Channels *into* the
        crashed replica lose their receiver-side decoder state, so their
        epoch is bumped: in-flight batches become stale (they die on
        arrival, and resync/retransmission recover the contents) and
        post-crash flushes start fresh delta chains.  Channels *out of*
        the crashed replica only lose the sender-side encoder state —
        batches already in flight to live peers remain decodable (the
        receivers' state is intact and FIFO order holds), so only the
        encoder chain restarts: the crashed sender's next post-restart
        flush goes full.  A no-op without batching.
        """
        if self._batching is None:
            return
        for channel in set(self._batch_seq) | set(self._open_batches):
            if channel[1] == replica_id:
                self._sever_channel(channel)
            elif channel[0] == replica_id and self._delta_encoder is not None:
                self._delta_encoder.reset(channel)

    def batch_is_stale(self, event: BatchDeliveryEvent) -> bool:
        """``True`` when the batch's stream epoch predates a crash cut."""
        return event.epoch != self._channel_epoch.get(event.batch.channel, 0)

    # ------------------------------------------------------------------
    # Dynamic membership support
    # ------------------------------------------------------------------
    def take_outstanding(self) -> List[Tuple[float, UpdateMessage]]:
        """Claim every unacknowledged tracked message, in deterministic order.

        The reconfiguration flush delivers these directly at the epoch
        boundary; they are acknowledged here (before delivery) so pending
        retransmission timers become no-ops and no old-epoch copy survives
        into the new configuration.  Messages already delivered and merely
        awaiting a delayed ack are acknowledged without being returned —
        re-delivering them would double-count delivery statistics.
        """
        out = [
            self._outstanding[key]
            for key in sorted(self._outstanding)
            if key not in self._pending_acks
        ]
        for key in list(self._outstanding):
            self._acknowledge(key)
        return out

    def take_held_messages(self) -> List[Tuple[float, UpdateMessage]]:
        """Claim every parked (held/partitioned) single message (epoch flush)."""
        held = self._held_messages
        self._held_messages = []
        return held

    def take_held_batches(
        self,
    ) -> List[Tuple[float, Tuple[float, ...], MessageBatch, int]]:
        """Claim every parked batch (epoch flush)."""
        held = self._held_batches
        self._held_batches = []
        return held

    def restart_delta_streams(self) -> None:
        """Reset every channel's timestamp delta chain (epoch boundary).

        After a migration, the last-shipped timestamp on each channel is
        indexed by the retired configuration's edges; the next frame on
        every channel must go full.
        """
        if self._delta_encoder is not None:
            self._delta_encoder.reset()

    def forget_replica(self, replica_id: ReplicaId) -> None:
        """Garbage-collect all per-replica transport state (a *leave*).

        Drops the leaver's sent-log outbox, reliability tracking, batching
        stream state and delta chains; aggregate statistics are preserved
        (they describe the past, which the leave does not rewrite).
        """
        if self._sent_log is not None:
            self._sent_log.pop(replica_id, None)
        for key in [k for k in self._outstanding if k[1] == replica_id]:
            del self._outstanding[key]
        self._acked = {k for k in self._acked if k[1] != replica_id}
        self._pending_acks = {k for k in self._pending_acks if k[1] != replica_id}
        stale_channels = {
            channel
            for book in (self._batch_seq, self._open_batches)
            for channel in book
            if replica_id in channel
        }
        for book in (
            self._batch_seq,
            self._flush_generation,
            self._last_batch_arrival,
            self._channel_epoch,
        ):
            for channel in [c for c in book if replica_id in c]:
                del book[channel]
        if self._delta_encoder is not None:
            for channel in stale_channels:
                self._delta_encoder.reset(channel)

    def note_stale_batch(self, event: BatchDeliveryEvent) -> None:
        """Discard a batch whose stream was severed while it was in flight.

        Counted with the crash losses (the crash is what killed it); the
        epoch is *not* bumped again — batches flushed after the cut belong
        to the new stream and must keep flowing.
        """
        self.stats.messages_lost_to_crash += len(event.batch.messages)

    # ------------------------------------------------------------------
    # Ack + resend-timer reliability layer
    # ------------------------------------------------------------------
    def _acknowledge(self, key: Tuple[UpdateId, ReplicaId]) -> None:
        self._acked.add(key)
        self._outstanding.pop(key, None)
        self._pending_acks.discard(key)

    def _track(self, message: UpdateMessage, sent_at: float) -> None:
        key = (message.update.uid, message.destination)
        if key in self._acked or key in self._outstanding:
            return
        self._outstanding[key] = (sent_at, message)
        self._arm_retry(key, attempt=1)

    def _arm_retry(self, key: Tuple[UpdateId, ReplicaId], attempt: int) -> None:
        def fire(host: "SimulationHost", time: float,
                 key=key, attempt=attempt) -> None:
            self._retry(key, attempt)

        self.kernel.schedule_after(
            self._reliability.resend_timeout,
            TimerEvent(callback=fire, tag="retransmit"),
        )

    def _retry(self, key: Tuple[UpdateId, ReplicaId], attempt: int) -> None:
        if key in self._acked or key not in self._outstanding:
            return
        sent_at, message = self._outstanding[key]
        channel = (message.sender, message.destination)
        if self._blocked(channel):
            # Hand the copy to the partition/hold buffer: it is delivered
            # unconditionally on release/heal, so the timer chain can stop.
            self._held_messages.append((sent_at, message))
            del self._outstanding[key]
            return
        self.stats.retransmissions += 1
        self._account_single(message)
        final = attempt >= self._reliability.max_retries
        self._put_on_wire(message, sent_at=sent_at, force=final)
        if final:
            del self._outstanding[key]
        else:
            self._arm_retry(key, attempt + 1)

    # ------------------------------------------------------------------
    # Crash-recovery anti-entropy
    # ------------------------------------------------------------------
    def resync(self, destination: ReplicaId,
               known: Set[UpdateId]) -> List[UpdateId]:
        """Re-send every logged message to ``destination`` it does not know.

        The anti-entropy half of crash recovery: the restarted replica
        reports the update ids it holds (applied + pending, from its durable
        snapshot) and the transport re-sends the rest from its sent-log,
        through the normal delay/partition path.  Requires
        :meth:`enable_sent_log` to have been on while the messages were
        originally sent.  Returns the re-sent update ids in send order.
        """
        if self._sent_log is None:
            raise SimulationError(
                "resync requires the transport sent-log; call enable_sent_log() "
                "(the FaultInjector does this on construction)"
            )
        missing: List[UpdateId] = []
        for uid, (sent_at, message) in self._sent_log.get(destination, {}).items():
            if uid in known:
                continue
            missing.append(uid)
            self.stats.retransmissions += 1
            self._account_single(message)
            channel = (message.sender, message.destination)
            if self._blocked(channel):
                self._held_messages.append((self.kernel.now, message))
            else:
                self._transmit(message, sent_at=self.kernel.now)
        return missing

    # ------------------------------------------------------------------
    # Adversarial channel control: holds and partitions
    # ------------------------------------------------------------------
    def _blocked(self, channel: Channel) -> bool:
        return channel in self._held_channels or self._crosses_partition(channel)

    def _crosses_partition(self, channel: Channel) -> bool:
        if self._partition_groups is None:
            return False
        lookup = self._partition_lookup
        # Replicas in no listed group form one implicit "rest" island (-1).
        return lookup.get(channel[0], -1) != lookup.get(channel[1], -1)

    def hold(self, sender: ReplicaId, destination: ReplicaId) -> None:
        """Park all current and future traffic on one directed channel."""
        self._held_channels.add((sender, destination))

    def release(self, sender: ReplicaId, destination: ReplicaId) -> None:
        """Release a held channel; parked messages are scheduled from *now*.

        A released message still crossing an active partition stays parked
        until :meth:`heal`.
        """
        self._held_channels.discard((sender, destination))
        self._flush_parked()

    def release_all(self) -> None:
        """Release every held channel."""
        self._held_channels.clear()
        self._flush_parked()

    def partition(self, *groups: Iterable[ReplicaId]) -> None:
        """Split the replicas into isolated groups (replacing any partition).

        Messages crossing group boundaries — in either direction — are
        parked exactly like held-channel traffic and fly on :meth:`heal`.
        Replicas not named in any group form one additional island together.
        Messages parked under the previous partition whose endpoints the
        new one reunites are re-scheduled immediately.
        """
        cleaned = tuple(frozenset(g) for g in groups if g)
        self._partition_groups = cleaned or None
        self._partition_lookup = {
            rid: index for index, group in enumerate(cleaned) for rid in group
        }
        self._flush_parked()

    def heal(self) -> None:
        """Dissolve the partition; parked cross-partition traffic flies.

        Explicitly held channels stay held: their messages remain parked
        until :meth:`release`.
        """
        self._partition_groups = None
        self._partition_lookup = {}
        self._flush_parked()

    @property
    def partitioned(self) -> bool:
        """``True`` while a partition is active."""
        return self._partition_groups is not None

    def _flush_parked(self) -> None:
        """Re-schedule every parked message/batch whose channel is now unblocked."""
        still_parked: List[Tuple[float, UpdateMessage]] = []
        for sent_at, message in self._held_messages:
            if self._blocked((message.sender, message.destination)):
                still_parked.append((sent_at, message))
            else:
                self._schedule(message, sent_at=sent_at)
        self._held_messages = still_parked
        still_parked_batches: List[Tuple[float, Tuple[float, ...], MessageBatch, int]] = []
        for sent_at, sent_times, batch, epoch in self._held_batches:
            if self._blocked(batch.channel):
                still_parked_batches.append((sent_at, sent_times, batch, epoch))
            else:
                self._schedule_batch(batch, sent_times, sent_at=sent_at, epoch=epoch)
        self._held_batches = still_parked_batches

    @property
    def held_count(self) -> int:
        """Number of messages currently parked on held or partitioned channels."""
        return len(self._held_messages) + sum(
            len(batch.messages) for _, _, batch, _ in self._held_batches
        )


# ======================================================================
# The shared host
# ======================================================================

class SimulationHost(ReplicaHost):
    """Base class for every simulated deployment driven by the kernel.

    The host-agnostic surface — replica bookkeeping, metric recording,
    event traces and consistency checking — comes from
    :class:`~repro.core.host.ReplicaHost` (shared with the live runtime);
    this class adds the simulated half: the event loop over the
    :class:`EventKernel`, quiescence detection with a cross-replica apply
    fixpoint, and the kernel-time scheduling helpers.

    Parameters
    ----------
    share_graph:
        The register placement / share graph of the system.
    network:
        The :class:`~repro.sim.network.SimNetwork` facade bundling the
        event kernel and the transport (built by the concrete cluster).
    """

    def __init__(self, share_graph: ShareGraph, network: "Any") -> None:
        super().__init__(share_graph)
        self.network = network
        self.kernel: EventKernel = network.kernel
        self.transport: Transport = network.transport
        #: Time of the last delivery/arrival processed (timers excluded), so
        #: a trailing metrics sampler does not inflate reported makespans.
        self.last_activity_time: float = 0.0
        # Arrivals are serviced iteratively: a blocking operation that steps
        # the kernel can pop further ArrivalEvents, which are deferred onto
        # this queue (with their firing time, so the queueing wait counts
        # towards their operation latency) instead of being submitted
        # reentrantly — unbounded recursion on long arrival backlogs
        # otherwise.
        self._arrival_backlog: "deque[Tuple[float, Any]]" = deque()
        self._servicing_arrivals = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.kernel.now

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_tracing(self, recorder: Optional[Any] = None) -> Any:
        """Attach a message-lifecycle :class:`~repro.obs.trace.TraceRecorder`.

        One recorder covers host and transport, so every stage of every
        op — issue, send, wire, deliver, apply — lands in one event list
        (simulated-time stamps).  Returns the recorder.  Tracing is off by
        default; untraced runs pay a single ``is not None`` check per hook.
        """
        if recorder is None:
            from ..obs.trace import TraceRecorder
            recorder = TraceRecorder()
        self.tracer = recorder
        self.transport.tracer = recorder
        return recorder

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule_timer(
        self,
        delay: float,
        callback: Callable[["SimulationHost", float], None],
        tag: str = "",
    ) -> None:
        """Fire ``callback(host, time)`` after ``delay`` simulated time units."""
        self.kernel.schedule_after(delay, TimerEvent(callback=callback, tag=tag))

    def schedule_fault_at(
        self,
        time: float,
        action: Callable[["SimulationHost", float], None],
        kind: str = "",
    ) -> None:
        """Schedule a fault action at absolute simulated time ``time``."""
        self.kernel.schedule_at(time, FaultEvent(action=action, kind=kind))

    def schedule_reconfig_at(
        self,
        time: float,
        action: Callable[["SimulationHost", float], None],
        kind: str = "",
    ) -> None:
        """Schedule a reconfiguration step at absolute simulated time ``time``."""
        self.kernel.schedule_at(time, ReconfigEvent(action=action, kind=kind))

    def schedule_arrival(self, delay: float, operation: "Any") -> None:
        """Schedule an open-loop client operation ``delay`` units from now."""
        self.kernel.schedule_after(delay, ArrivalEvent(operation=operation))

    def schedule_arrival_at(self, time: float, operation: "Any") -> None:
        """Schedule an open-loop client operation at absolute time ``time``."""
        self.kernel.schedule_at(time, ArrivalEvent(operation=operation))

    def busy(self) -> bool:
        """``True`` while the run has work left: scheduled events, or
        arrivals deferred onto the service backlog (which are no longer
        kernel events).  Self-rescheduling timers should key off this, not
        off the kernel alone."""
        return self.kernel.has_events() or bool(self._arrival_backlog)

    # ------------------------------------------------------------------
    # The drive loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next scheduled event (delivery, fault, timer or arrival).

        Returns ``False`` when nothing remained scheduled.
        """
        firing = self.kernel.next_event()
        if firing is None:
            return False
        event = firing.event
        if isinstance(event, DeliveryEvent):
            self.last_activity_time = firing.time
            if self.replica_down(event.message.destination):
                # The destination is crashed: the delivery is lost (it is
                # re-sent by the retransmission layer or the restart resync).
                self.transport.note_lost_delivery(event)
            else:
                self.transport.record_delivery(event, firing.time)
                self._deliver(event.message)
        elif isinstance(event, BatchDeliveryEvent):
            self.last_activity_time = firing.time
            if self.replica_down(event.batch.destination):
                # The whole envelope is lost with its crashed destination;
                # retransmission/resync recover the contents.
                self.transport.note_lost_batch(event)
            elif self.transport.batch_is_stale(event):
                # The stream was severed (crash) while this batch was in
                # flight; it dies like a broken connection's data.
                self.transport.note_stale_batch(event)
            else:
                self.transport.record_batch_delivery(event, firing.time)
                self._deliver_batch(event.batch)
        elif isinstance(event, TimerEvent):
            event.callback(self, firing.time)
        elif isinstance(event, ArrivalEvent):
            self.last_activity_time = firing.time
            self._handle_arrival(event.operation)
        elif isinstance(event, FaultEvent):
            event.action(self, firing.time)
        elif isinstance(event, ReconfigEvent):
            event.action(self, firing.time)
        else:  # pragma: no cover - future event types
            raise SimulationError(f"unknown event type {type(event).__name__}")
        return True

    def _accepts_epoch(self, message: UpdateMessage) -> bool:
        """Epoch admission control: reject frames from retired configurations.

        The commit flush completes the old epoch before the new one
        installs, so in supported schedules no live frame ever arrives
        stale — this check is the wire contract's safety net (a stale
        frame's metadata indexes a configuration that no longer exists and
        must not reach the predicate).  Rejections are counted, and content
        recovery is the retransmission/resync layers' responsibility.
        """
        if message.epoch == self.epoch:
            return True
        self.transport.stats.messages_rejected_stale_epoch += 1
        return False

    def _deliver(self, message: UpdateMessage) -> None:
        if not self._accepts_epoch(message):
            return
        replica = self._replica(message.destination)
        replica.receive(message)
        self._apply_ready(replica)
        self._after_delivery(replica)

    def _deliver_batch(self, batch: "MessageBatch") -> None:
        """Hand a whole batch to its destination, then run one apply pass.

        The vectorized delivery path: one kernel event per batch, one
        :meth:`~repro.core.host.ReplicaHost._apply_batch` call buffering
        every contained message and draining the pending index in a single
        sweep — equivalent to per-message ``receive`` + ``apply_ready`` by
        construction (they share the drain loop).
        """
        accepted = [m for m in batch.messages if self._accepts_epoch(m)]
        if not accepted:
            return
        replica = self._replica(batch.destination)
        self._apply_batch(replica, accepted)
        self._after_delivery(replica)

    def _handle_arrival(self, operation: "Any") -> None:
        self._arrival_backlog.append((self.now, operation))
        if self._servicing_arrivals:
            # Reached from inside another arrival's (blocking) submit; the
            # outer service loop will pick this operation up in order.
            return
        self._servicing_arrivals = True
        try:
            while self._arrival_backlog:
                arrived_at, next_operation = self._arrival_backlog.popleft()
                self.submit_operation(next_operation)
                self.metrics.operation_latencies.append(self.now - arrived_at)
        finally:
            self._servicing_arrivals = False

    def run_until_quiescent(self, max_steps: int = 1_000_000) -> int:
        """Fire scheduled events until none remain; returns events fired.

        Held channels are *not* released automatically; the adversarial
        experiments release them explicitly.  After the queue drains, a
        *cross-replica fixpoint* re-runs every replica's apply loop (and the
        architecture's quiescent hook) until no replica makes progress: one
        replica's apply or serve can unblock another's buffered update, and
        a serve can even emit new messages — in which case the drain loop
        resumes.  Raises :class:`~repro.core.errors.SimulationError` if the
        step budget is exhausted, which would indicate a livelock in the
        protocol under test.
        """
        steps = 0
        while True:
            while self.kernel.has_events():
                if steps >= max_steps:
                    raise SimulationError(
                        f"run_until_quiescent exceeded {max_steps} steps"
                    )
                self.step()
                steps += 1
            self._apply_fixpoint()
            if not self.kernel.has_events():
                return steps

    def _apply_fixpoint(self) -> bool:
        """Apply/serve across all replicas until globally stable."""
        any_progress = False
        progress = True
        while progress:
            progress = False
            for replica in self._replica_map().values():
                if self.replica_down(replica.replica_id):
                    continue
                if self._apply_ready(replica, force=True):
                    progress = True
                if self._quiescent_hook(replica):
                    progress = True
            any_progress = any_progress or progress
        return any_progress

    # ------------------------------------------------------------------
    # Simulator-specific introspection
    # ------------------------------------------------------------------
    def total_metadata_counters_sent(self) -> int:
        """Total counters shipped inside update messages so far."""
        return self.transport.stats.metadata_counters_sent
