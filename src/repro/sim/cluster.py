"""A cluster: replicas + network + checker, driven step by step.

:class:`Cluster` wires a set of :class:`~repro.core.protocol.CausalReplica`
instances (the paper's algorithm by default, or any baseline) to a
:class:`~repro.sim.network.SimNetwork` and exposes the peer-to-peer client
operations of Figure 1a: a client co-located with replica ``i`` issues
``read``/``write`` against that replica.

The cluster is deliberately *synchronous to drive, asynchronous inside*: the
caller decides when writes happen and when the network makes progress
(:meth:`step`, :meth:`run_until_quiescent`), while message delays and
reordering come from the network's delay model.  Every issue/apply is traced,
so after a run :meth:`check_consistency` can validate the whole execution
against Definition 2 independently of the protocol's own metadata.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.consistency import ConsistencyChecker, ConsistencyReport
from ..core.errors import SimulationError, UnknownReplicaError
from ..core.protocol import CausalReplica, ReplicaEvent, Update, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from .delays import DelayModel
from .network import SimNetwork

#: Signature of a factory building one replica of a protocol for a cluster.
ReplicaFactory = Callable[[ShareGraph, ReplicaId], CausalReplica]


def edge_indexed_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """The default factory: the paper's edge-indexed timestamp algorithm."""
    return EdgeIndexedReplica(graph, replica_id)


@dataclass
class ClusterMetrics:
    """Aggregate protocol metrics collected during a run."""

    writes: int = 0
    reads: int = 0
    applies: int = 0
    #: Apply latency (simulated time from issue to apply) per remote apply.
    apply_latencies: List[float] = field(default_factory=list)
    #: Maximum pending-buffer occupancy observed per replica.
    max_pending: Dict[ReplicaId, int] = field(default_factory=dict)

    @property
    def mean_apply_latency(self) -> float:
        """Mean remote-apply latency in simulated time units."""
        if not self.apply_latencies:
            return 0.0
        return sum(self.apply_latencies) / len(self.apply_latencies)


class Cluster:
    """A simulated peer-to-peer deployment over one share graph.

    Parameters
    ----------
    share_graph:
        The register placement / share graph of the system.
    replica_factory:
        Builds the protocol instance per replica; defaults to the paper's
        edge-indexed algorithm.
    delay_model, seed:
        Forwarded to the :class:`~repro.sim.network.SimNetwork`.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_factory: ReplicaFactory = edge_indexed_factory,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
    ) -> None:
        self.share_graph = share_graph
        self.network = SimNetwork(delay_model=delay_model, seed=seed)
        self.replicas: Dict[ReplicaId, CausalReplica] = {
            rid: replica_factory(share_graph, rid) for rid in share_graph.replica_ids
        }
        self.metrics = ClusterMetrics()
        self._issue_times: Dict[Tuple[ReplicaId, int], float] = {}

    # ------------------------------------------------------------------
    # Client operations (peer-to-peer architecture, Figure 1a)
    # ------------------------------------------------------------------
    def replica(self, replica_id: ReplicaId) -> CausalReplica:
        """The replica object for ``replica_id``."""
        try:
            return self.replicas[replica_id]
        except KeyError:
            raise UnknownReplicaError(replica_id) from None

    def write(self, replica_id: ReplicaId, register: Register, value: Any) -> Update:
        """Issue a write at the client co-located with ``replica_id``."""
        replica = self.replica(replica_id)
        messages = replica.write(register, value, sim_time=self.network.now)
        self.metrics.writes += 1
        update = replica.applied[-1]
        self._issue_times[update.uid] = self.network.now
        self.network.send_all(messages)
        return update

    def read(self, replica_id: ReplicaId, register: Register) -> Any:
        """Issue a read at the client co-located with ``replica_id``."""
        self.metrics.reads += 1
        return self.replica(replica_id).read(register, sim_time=self.network.now)

    # ------------------------------------------------------------------
    # Simulation control
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Deliver the next scheduled message and run the receiver's apply loop.

        Returns ``False`` when no scheduled message remained.
        """
        delivery = self.network.deliver_next()
        if delivery is None:
            return False
        message = delivery.message
        receiver = self.replica(message.destination)
        receiver.receive(message)
        self._apply_ready(receiver)
        return True

    def _apply_ready(self, replica: CausalReplica) -> None:
        applied = replica.apply_ready(sim_time=self.network.now)
        for update in applied:
            self.metrics.applies += 1
            issued_at = self._issue_times.get(update.uid)
            if issued_at is not None:
                self.metrics.apply_latencies.append(self.network.now - issued_at)
        pending = replica.pending_count()
        previous = self.metrics.max_pending.get(replica.replica_id, 0)
        self.metrics.max_pending[replica.replica_id] = max(previous, pending)

    def run_until_quiescent(self, max_steps: int = 1_000_000) -> int:
        """Deliver scheduled messages until none remain; returns steps taken.

        Held channels are *not* released automatically; the adversarial
        experiments release them explicitly.  Raises
        :class:`~repro.core.errors.SimulationError` if the step budget is
        exhausted, which would indicate a livelock in the protocol under
        test.
        """
        steps = 0
        while self.network.pending_count() > 0:
            if steps >= max_steps:
                raise SimulationError(
                    f"run_until_quiescent exceeded {max_steps} steps"
                )
            self.step()
            steps += 1
        # One final pass: applying one update may unblock another that was
        # delivered earlier at a different replica.
        for replica in self.replicas.values():
            self._apply_ready(replica)
        return steps

    # ------------------------------------------------------------------
    # Introspection, checking and metrics
    # ------------------------------------------------------------------
    def events_by_replica(self) -> Dict[ReplicaId, Sequence[ReplicaEvent]]:
        """Each replica's local issue/apply/read trace."""
        return {rid: tuple(r.events) for rid, r in self.replicas.items()}

    def check_consistency(self, check_liveness: bool = True) -> ConsistencyReport:
        """Validate the execution so far against Definition 2."""
        checker = ConsistencyChecker(self.share_graph)
        return checker.check(self.events_by_replica(), check_liveness=check_liveness)

    def pending_updates(self) -> int:
        """Updates buffered but not yet applied, summed over replicas."""
        return sum(r.pending_count() for r in self.replicas.values())

    def metadata_sizes(self) -> Dict[ReplicaId, int]:
        """Current per-replica metadata size in counters."""
        return {rid: r.metadata_size() for rid, r in sorted(self.replicas.items())}

    def total_metadata_counters_sent(self) -> int:
        """Total counters shipped inside update messages so far."""
        return self.network.stats.metadata_counters_sent

    def values(self, register: Register) -> Dict[ReplicaId, Any]:
        """The current value of ``register`` at every replica storing it."""
        return {
            rid: self.replicas[rid].store[register]
            for rid in self.share_graph.replicas_storing(register)
        }


def build_cluster(
    share_graph: ShareGraph,
    replica_factory: ReplicaFactory = edge_indexed_factory,
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
) -> Cluster:
    """Convenience constructor mirroring :class:`Cluster`'s signature."""
    return Cluster(
        share_graph,
        replica_factory=replica_factory,
        delay_model=delay_model,
        seed=seed,
    )
