"""The peer-to-peer cluster of Figure 1a, rebased on the event kernel.

:class:`Cluster` wires a set of :class:`~repro.core.protocol.CausalReplica`
instances (the paper's algorithm by default, or any baseline) to the shared
simulation kernel (:mod:`repro.sim.engine`) and exposes the peer-to-peer
client operations of Figure 1a: a client co-located with replica ``i``
issues ``read``/``write`` against that replica.

All drive-loop machinery — :meth:`~repro.sim.engine.SimulationHost.step`,
:meth:`~repro.sim.engine.SimulationHost.run_until_quiescent` with its
cross-replica apply fixpoint, timers, open-loop arrivals and the unified
:class:`~repro.sim.engine.RunMetrics` — comes from the
:class:`~repro.sim.engine.SimulationHost` base class and is shared verbatim
with the client–server deployment.  Every issue/apply is traced, so after a
run :meth:`~repro.sim.engine.SimulationHost.check_consistency` can validate
the whole execution against Definition 2 independently of the protocol's
own metadata.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..core.errors import ConfigurationError
from ..core.protocol import CausalReplica, Update, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from .delays import DelayModel
from .engine import BatchingConfig, RunMetrics, SimulationHost
from .network import SimNetwork

#: Signature of a factory building one replica of a protocol for a cluster.
ReplicaFactory = Callable[[ShareGraph, ReplicaId], CausalReplica]

#: Backwards-compatible name for the unified metrics structure.
ClusterMetrics = RunMetrics


def edge_indexed_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """The default factory: the paper's edge-indexed timestamp algorithm."""
    return EdgeIndexedReplica(graph, replica_id)


class Cluster(SimulationHost):
    """A simulated peer-to-peer deployment over one share graph.

    Parameters
    ----------
    share_graph:
        The register placement / share graph of the system.
    replica_factory:
        Builds the protocol instance per replica; defaults to the paper's
        edge-indexed algorithm.
    delay_model, seed, batching, wire_accounting:
        Forwarded to the :class:`~repro.sim.network.SimNetwork`.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_factory: ReplicaFactory = edge_indexed_factory,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        batching: Optional[BatchingConfig] = None,
        wire_accounting: bool = False,
    ) -> None:
        super().__init__(
            share_graph,
            SimNetwork(
                delay_model=delay_model,
                seed=seed,
                batching=batching,
                wire_accounting=wire_accounting,
            ),
        )
        self.replica_factory = replica_factory
        self.replicas: Dict[ReplicaId, CausalReplica] = {
            rid: replica_factory(share_graph, rid) for rid in share_graph.replica_ids
        }
        # Each replica family registers its timestamp codec; the transport's
        # byte accounting resolves a message's codec through its sender.
        self.transport.set_codec_resolver(self._codec_for_message)

    def _codec_for_message(self, message: UpdateMessage) -> Any:
        replica = self.replicas.get(message.sender)
        return replica.wire_codec() if replica is not None else None

    def _replica_map(self) -> Dict[ReplicaId, CausalReplica]:
        return self.replicas

    # ------------------------------------------------------------------
    # Membership hooks (dynamic reconfiguration)
    # ------------------------------------------------------------------
    def _add_member(self, replica_id: ReplicaId, new_graph: ShareGraph,
                    epoch: int) -> CausalReplica:
        replica = self.replica_factory(new_graph, replica_id)
        replica.epoch = epoch
        self.replicas[replica_id] = replica
        return replica

    def _remove_member(self, replica_id: ReplicaId) -> None:
        del self.replicas[replica_id]

    def _migrate_members(self, new_graph: ShareGraph, epoch: int) -> None:
        for replica_id in sorted(self.replicas):
            self.replicas[replica_id].migrate(new_graph, epoch)

    # ------------------------------------------------------------------
    # Client operations (peer-to-peer architecture, Figure 1a)
    # ------------------------------------------------------------------
    def replica(self, replica_id: ReplicaId) -> CausalReplica:
        """The replica object for ``replica_id``."""
        return self._replica(replica_id)

    def write(self, replica_id: ReplicaId, register: Register,
              value: Any) -> Optional[Update]:
        """Issue a write at the client co-located with ``replica_id``.

        Returns ``None`` (rejecting the operation) while the replica is
        crashed by the fault injector, outside the current membership, or
        migrating — the availability cost of faults and reconfiguration.
        """
        if self.operation_rejected(replica_id):
            self.metrics.rejected_operations += 1
            return None
        replica = self.replica(replica_id)
        messages = replica.write(register, value, sim_time=self.now)
        self._record_operation("write")
        update = replica.applied[-1]
        self._note_issue(update)
        self.network.send_all(messages)
        return update

    def read(self, replica_id: ReplicaId, register: Register) -> Any:
        """Issue a read at the client co-located with ``replica_id``.

        Returns ``None`` (rejecting the operation) while the replica is
        crashed, outside the current membership, or migrating.
        """
        if self.operation_rejected(replica_id):
            self.metrics.rejected_operations += 1
            return None
        self._record_operation("read")
        return self.replica(replica_id).read(register, sim_time=self.now)

    def submit_operation(self, operation: Any) -> Any:
        """Execute one workload :class:`~repro.sim.workloads.Operation`."""
        if operation.kind == "write":
            return self.write(operation.replica_id, operation.register, operation.value)
        if operation.kind == "read":
            return self.read(operation.replica_id, operation.register)
        raise ConfigurationError(f"unknown operation kind {operation.kind!r}")


def build_cluster(
    share_graph: ShareGraph,
    replica_factory: ReplicaFactory = edge_indexed_factory,
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
) -> Cluster:
    """Convenience constructor mirroring :class:`Cluster`'s signature."""
    return Cluster(
        share_graph,
        replica_factory=replica_factory,
        delay_model=delay_model,
        seed=seed,
    )
