"""Reliable, non-FIFO point-to-point channels (facade over the event kernel).

Historically this module owned the discrete-event machinery; that now lives
in :mod:`repro.sim.engine` (one :class:`~repro.sim.engine.EventKernel` +
:class:`~repro.sim.engine.Transport` shared by message deliveries, timers
and open-loop client arrivals).  :class:`SimNetwork` remains as the stable
network-facing API — sending, delivery statistics, and the adversarial
hold/release channel control used by the necessity and lower-bound
experiments — and is what the simulated clusters expose as ``.network``.

Channels are reliable (every message is eventually delivered exactly once)
but *not* FIFO: a later message on the same channel may overtake an earlier
one whenever its sampled delay is smaller — matching the system model of
Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.protocol import UpdateMessage
from ..core.registers import ReplicaId
from .delays import DelayModel
from .engine import (
    BatchDeliveryEvent,
    BatchingConfig,
    ChannelWireStats,
    DeliveryEvent,
    EventKernel,
    NetworkStats,
    Transport,
)

__all__ = [
    "BatchingConfig",
    "ChannelWireStats",
    "Delivery",
    "NetworkStats",
    "SimNetwork",
]


@dataclass(frozen=True, slots=True)
class Delivery:
    """One message delivery popped from the network."""

    time: float
    message: UpdateMessage
    sent_at: float


class SimNetwork:
    """The asynchronous message substrate connecting the replicas.

    Parameters
    ----------
    delay_model:
        Assigns a latency to every message (default: ``UniformDelay(1, 10)``).
    seed:
        Seed for the private random generator; two networks built with the
        same seed and fed the same messages behave identically.
    kernel:
        Optionally a pre-existing :class:`~repro.sim.engine.EventKernel` to
        schedule on; by default the network owns a fresh one.
    batching:
        Optionally a :class:`~repro.sim.engine.BatchingConfig`: messages
        then ride per-channel batching windows delivered as single kernel
        events, with the wire-format byte accounting implied (see the
        ``repro.wire`` package).
    wire_accounting:
        Book every sent message into byte-accurate
        :class:`~repro.sim.engine.NetworkStats` even without batching.
    """

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        kernel: Optional[EventKernel] = None,
        batching: Optional[BatchingConfig] = None,
        wire_accounting: bool = False,
    ) -> None:
        self.kernel = kernel or EventKernel()
        self.transport = Transport(self.kernel, delay_model=delay_model, seed=seed)
        if batching is not None:
            self.transport.enable_batching(batching)
        elif wire_accounting:
            self.transport.enable_wire_accounting()

    # ------------------------------------------------------------------
    # Pass-through properties
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.kernel.now

    @property
    def stats(self) -> NetworkStats:
        """Aggregate traffic statistics."""
        return self.transport.stats

    @property
    def rng(self):
        """The transport's private random generator."""
        return self.transport.rng

    @property
    def delay_model(self) -> DelayModel:
        """The pluggable per-message delay model."""
        return self.transport.delay_model

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: UpdateMessage, delay: Optional[float] = None) -> None:
        """Inject a message; it will be delivered after its sampled delay.

        ``delay`` overrides the delay model for this single message (used by
        scripted adversarial schedules).
        """
        self.transport.send(message, delay=delay)

    def send_all(self, messages: Iterable[UpdateMessage]) -> None:
        """Send a batch of messages."""
        self.transport.send_all(messages)

    # ------------------------------------------------------------------
    # Adversarial channel control
    # ------------------------------------------------------------------
    def hold(self, sender: ReplicaId, destination: ReplicaId) -> None:
        """Park all current and future traffic on one directed channel."""
        self.transport.hold(sender, destination)

    def release(self, sender: ReplicaId, destination: ReplicaId) -> None:
        """Release a held channel; parked messages are scheduled from *now*."""
        self.transport.release(sender, destination)

    def release_all(self) -> None:
        """Release every held channel."""
        self.transport.release_all()

    def partition(self, *groups: Iterable[ReplicaId]) -> None:
        """Split the replicas into isolated groups (fault subsystem)."""
        self.transport.partition(*groups)

    def heal(self) -> None:
        """Dissolve the active partition; parked cross-group traffic flies."""
        self.transport.heal()

    @property
    def partitioned(self) -> bool:
        """``True`` while a partition is active."""
        return self.transport.partitioned

    @property
    def held_count(self) -> int:
        """Number of messages currently parked on held or partitioned channels."""
        return self.transport.held_count

    # ------------------------------------------------------------------
    # Batching window control
    # ------------------------------------------------------------------
    @property
    def batching(self) -> Optional[BatchingConfig]:
        """The active batching configuration, or ``None``."""
        return self.transport.batching

    def flush_batches(self) -> None:
        """Force-flush every open per-channel batching window."""
        self.transport.flush_open_batches()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of scheduled (not yet delivered) messages, excluding held ones.

        Counts the contents of scheduled batches message-by-message, so the
        number means the same thing with and without batching.
        """
        singles = self.kernel.pending_of(DeliveryEvent)
        batched = sum(
            len(event.batch.messages)
            for event in self.kernel.events_of(BatchDeliveryEvent)
        )
        return singles + batched

    def in_flight(self) -> int:
        """Total undelivered messages (scheduled + held + open windows)."""
        return (
            self.pending_count()
            + self.transport.held_count
            + self.transport.open_batch_messages
        )

    def deliver_next(self) -> Optional[Delivery]:
        """Pop the earliest scheduled message, advancing simulated time.

        Only valid while the kernel holds message deliveries exclusively
        (standalone network use); hosts with timers or arrival events drive
        the kernel through :meth:`~repro.sim.engine.SimulationHost.step`.
        """
        head = self.kernel.peek_event()
        if head is None:
            return None
        if not isinstance(head, DeliveryEvent):
            # Checked before popping so the offending event (a timer or
            # arrival) survives and the clock does not advance.
            raise SimulationError(
                "deliver_next reached a non-delivery event; drive mixed "
                "event queues through the SimulationHost step loop instead"
            )
        firing = self.kernel.next_event()
        event: DeliveryEvent = firing.event
        self.transport.record_delivery(event, firing.time)
        return Delivery(time=firing.time, message=event.message, sent_at=event.sent_at)

    def drain(self) -> Iterable[Delivery]:
        """Yield deliveries until the scheduled queue is empty.

        Held messages are *not* drained; release them first if needed.
        """
        while True:
            delivery = self.deliver_next()
            if delivery is None:
                return
            yield delivery
