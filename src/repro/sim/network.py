"""A discrete-event simulation of reliable, non-FIFO point-to-point channels.

The network holds every in-flight :class:`~repro.core.protocol.UpdateMessage`
in a priority queue ordered by delivery time.  Channels are reliable (every
message is eventually delivered exactly once) but *not* FIFO: a later message
on the same channel may overtake an earlier one whenever its sampled delay is
smaller — matching the system model of Section 2.

Two extra controls support the adversarial executions used by the necessity
and lower-bound experiments:

* :meth:`SimNetwork.hold` / :meth:`SimNetwork.release` park all traffic on a
  channel until explicitly released ("the update message is not delivered
  until a later time" steps of the proofs);
* per-message delays come from a pluggable :class:`~repro.sim.delays.DelayModel`.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import SimulationError
from ..core.protocol import UpdateMessage
from ..core.registers import ReplicaId
from .delays import Channel, DelayModel, UniformDelay


@dataclass(frozen=True)
class Delivery:
    """One message delivery popped from the network."""

    time: float
    message: UpdateMessage
    sent_at: float


@dataclass
class NetworkStats:
    """Aggregate traffic statistics maintained by the network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    metadata_counters_sent: int = 0
    payload_messages_sent: int = 0
    metadata_only_messages_sent: int = 0
    total_latency: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency over all delivered messages."""
        if not self.messages_delivered:
            return 0.0
        return self.total_latency / self.messages_delivered


class SimNetwork:
    """The asynchronous message substrate connecting the replicas.

    Parameters
    ----------
    delay_model:
        Assigns a latency to every message (default: ``UniformDelay(1, 10)``).
    seed:
        Seed for the private random generator; two networks built with the
        same seed and fed the same messages behave identically.
    """

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
    ) -> None:
        self.delay_model = delay_model or UniformDelay()
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self.stats = NetworkStats()
        self._queue: List[Tuple[float, int, float, UpdateMessage]] = []
        self._counter = itertools.count()
        self._held_channels: Set[Channel] = set()
        self._held_messages: List[Tuple[float, UpdateMessage]] = []

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: UpdateMessage, delay: Optional[float] = None) -> None:
        """Inject a message; it will be delivered after its sampled delay.

        ``delay`` overrides the delay model for this single message (used by
        scripted adversarial schedules).
        """
        self.stats.messages_sent += 1
        self.stats.metadata_counters_sent += message.metadata_size
        if message.payload:
            self.stats.payload_messages_sent += 1
        else:
            self.stats.metadata_only_messages_sent += 1

        channel = (message.sender, message.destination)
        if channel in self._held_channels:
            self._held_messages.append((self.now, message))
            return
        self._schedule(message, sent_at=self.now, delay=delay)

    def send_all(self, messages: Iterable[UpdateMessage]) -> None:
        """Send a batch of messages."""
        for message in messages:
            self.send(message)

    def _schedule(self, message: UpdateMessage, sent_at: float,
                  delay: Optional[float] = None) -> None:
        latency = self.delay_model.delay(message, self.rng) if delay is None else delay
        if latency < 0:
            raise SimulationError(f"negative message delay: {latency}")
        deliver_at = self.now + latency
        heapq.heappush(self._queue, (deliver_at, next(self._counter), sent_at, message))

    # ------------------------------------------------------------------
    # Adversarial channel control
    # ------------------------------------------------------------------
    def hold(self, sender: ReplicaId, destination: ReplicaId) -> None:
        """Park all current and future traffic on one directed channel."""
        self._held_channels.add((sender, destination))

    def release(self, sender: ReplicaId, destination: ReplicaId) -> None:
        """Release a held channel; parked messages are scheduled from *now*."""
        channel = (sender, destination)
        self._held_channels.discard(channel)
        still_held: List[Tuple[float, UpdateMessage]] = []
        for sent_at, message in self._held_messages:
            if (message.sender, message.destination) == channel:
                self._schedule(message, sent_at=sent_at)
            else:
                still_held.append((sent_at, message))
        self._held_messages = still_held

    def release_all(self) -> None:
        """Release every held channel."""
        for channel in list(self._held_channels):
            self.release(*channel)

    @property
    def held_count(self) -> int:
        """Number of messages currently parked on held channels."""
        return len(self._held_messages)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of scheduled (not yet delivered) messages, excluding held ones."""
        return len(self._queue)

    def in_flight(self) -> int:
        """Total undelivered messages (scheduled + held)."""
        return len(self._queue) + len(self._held_messages)

    def deliver_next(self) -> Optional[Delivery]:
        """Pop the earliest scheduled message, advancing simulated time."""
        if not self._queue:
            return None
        deliver_at, _, sent_at, message = heapq.heappop(self._queue)
        if deliver_at < self.now:
            raise SimulationError("simulation time went backwards")
        self.now = deliver_at
        self.stats.messages_delivered += 1
        self.stats.total_latency += deliver_at - sent_at
        return Delivery(time=deliver_at, message=message, sent_at=sent_at)

    def drain(self) -> Iterable[Delivery]:
        """Yield deliveries until the scheduled queue is empty.

        Held messages are *not* drained; release them first if needed.
        """
        while True:
            delivery = self.deliver_next()
            if delivery is None:
                return
            yield delivery
