"""Smoke tests for the repo's operator-facing tools.

``tools/`` scripts are not importable as a package (they prepend ``src``
to ``sys.path`` themselves), so these tests load them by path.  Each test
is a tiny end-to-end run asserting the machine-readable contract — the
JSON shapes other tooling (CI artifact consumers, ``trace_report``'s
``--json``) parses — not the human tables.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_profile_hotpath_sim_json(tmp_path, capsys):
    profile_hotpath = _load_tool("profile_hotpath")
    out = str(tmp_path / "profile.json")
    code = profile_hotpath.main(
        ["sim", "--clique", "6", "--ops", "30", "--top", "5", "--json", out]
    )
    assert code == 0
    capsys.readouterr()  # swallow the human table
    with open(out, encoding="utf-8") as handle:
        document = json.load(handle)
    (scenario,) = document["scenarios"]
    assert scenario["scenario"] == "sim"
    assert scenario["clique"] == 6
    assert scenario["applies"] > 0
    assert 0 < len(scenario["hotspots"]) <= 5
    for row in scenario["hotspots"]:
        assert set(row) == {
            "function", "file", "line", "ncalls", "primitive_calls",
            "tottime", "cumtime",
        }
        assert row["cumtime"] >= row["tottime"] >= 0.0
    # Sorted by cumulative time, the sort the human table uses.
    cumtimes = [row["cumtime"] for row in scenario["hotspots"]]
    assert cumtimes == sorted(cumtimes, reverse=True)


@pytest.fixture()
def traced_dump(tmp_path):
    """A small traced sim run dumped to JSONL, as trace_report input."""
    from repro.core.share_graph import ShareGraph
    from repro.obs import (
        publish_epoch_segments,
        registry_for_sim,
        write_trace_jsonl,
    )
    from repro.sim.cluster import Cluster
    from repro.sim.engine import BatchingConfig
    from repro.sim.reconfig import ReconfigManager
    from repro.sim.topologies import clique_placement
    from repro.sim.workloads import run_open_loop, single_writer_workload

    graph = ShareGraph.from_placement(clique_placement(6))
    cluster = Cluster(graph, seed=3,
                      batching=BatchingConfig(max_messages=8, max_delay=2.0))
    manager = ReconfigManager(cluster)
    recorder = cluster.enable_tracing()
    workload = single_writer_workload(graph, rate=4.0, duration=15.0, seed=3)
    run_open_loop(cluster, workload)
    trace_path = str(tmp_path / "trace.jsonl")
    metrics_path = str(tmp_path / "metrics.jsonl")
    write_trace_jsonl(recorder.events, trace_path)
    registry = registry_for_sim(cluster)
    publish_epoch_segments(registry, manager.epoch_segments())
    registry.write_jsonl(metrics_path)
    return trace_path, metrics_path


def test_trace_report_end_to_end(traced_dump, tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    trace_path, metrics_path = traced_dump
    chrome_path = str(tmp_path / "chrome.json")
    json_path = str(tmp_path / "report.json")
    code = trace_report.main([
        trace_path, "--metrics", metrics_path, "--chrome", chrome_path,
        "--json", json_path, "--require-coverage", "0.99",
        "--time-scale", "1000",
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "coverage" in stdout
    assert "batch window" in stdout

    with open(json_path, encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["coverage"] >= 0.99
    assert "batch window" in report["breakdown"]
    assert report["critical_paths"]
    assert report["channels"]
    assert "per-epoch metadata traffic" in stdout
    assert [row["epoch"] for row in report["epochs"]] == [0]
    assert report["epochs"][0]["messages"] > 0
    assert 0.0 < report["epochs"][0]["counters_vs_bound"] <= 1.0

    with open(chrome_path, encoding="utf-8") as handle:
        chrome = json.load(handle)
    assert chrome["traceEvents"]


def test_trace_report_coverage_gate_fails_on_gutted_trace(traced_dump,
                                                          tmp_path, capsys):
    """Dropping every deliver event must trip ``--require-coverage``."""
    trace_report = _load_tool("trace_report")
    trace_path, _ = traced_dump
    gutted_path = str(tmp_path / "gutted.jsonl")
    with open(trace_path, encoding="utf-8") as src, \
            open(gutted_path, "w", encoding="utf-8") as dst:
        for line in src:
            if json.loads(line)["stage"] != "deliver":
                dst.write(line)
    code = trace_report.main([gutted_path, "--require-coverage", "0.99"])
    capsys.readouterr()
    assert code == 1
