"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.share_graph import ShareGraph
from repro.sim.topologies import (
    COUNTEREXAMPLE_IDS,
    clique_placement,
    counterexample1_placement,
    counterexample2_placement,
    figure3_placement,
    figure5_placement,
    ring_placement,
    tree_placement,
    triangle_placement,
)


@pytest.fixture
def figure3_graph() -> ShareGraph:
    """The Figure 3 path-shaped share graph."""
    return ShareGraph.from_placement(figure3_placement())


@pytest.fixture
def figure5_graph() -> ShareGraph:
    """The Figure 5 example share graph."""
    return ShareGraph.from_placement(figure5_placement())


@pytest.fixture
def triangle_graph() -> ShareGraph:
    """The 3-replica triangle share graph."""
    return ShareGraph.from_placement(triangle_placement())


@pytest.fixture
def ring6_graph() -> ShareGraph:
    """A 6-replica ring share graph."""
    return ShareGraph.from_placement(ring_placement(6))


@pytest.fixture
def tree7_graph() -> ShareGraph:
    """A 7-replica binary-tree share graph."""
    return ShareGraph.from_placement(tree_placement(7))


@pytest.fixture
def clique4_graph() -> ShareGraph:
    """Full replication over 4 replicas (single shared register)."""
    return ShareGraph.from_placement(clique_placement(4))


@pytest.fixture
def counterexample1_graph() -> ShareGraph:
    """Hélary–Milani counterexample 1 (Figures 6/8a)."""
    return ShareGraph.from_placement(counterexample1_placement())


@pytest.fixture
def counterexample2_graph() -> ShareGraph:
    """Hélary–Milani counterexample 2 (Figure 8b)."""
    return ShareGraph.from_placement(counterexample2_placement())


@pytest.fixture
def ce_ids() -> dict:
    """The paper's replica names for the counterexample graphs."""
    return dict(COUNTEREXAMPLE_IDS)


# Re-exported from the importable module so existing fixture code keeps
# working; test modules should import it from ``placements`` directly.
from placements import all_small_placements  # noqa: E402


@pytest.fixture(params=sorted(all_small_placements()))
def any_small_graph(request) -> ShareGraph:
    """Parametrized fixture iterating over the whole small-topology suite."""
    return ShareGraph.from_placement(all_small_placements()[request.param])
