"""The wire-format layer: primitives, codecs, delta frames, batching transport."""

from __future__ import annotations

import pytest

from repro.baselines.full_track import FullTrackReplica, full_track_factory
from repro.baselines.hoop_tracking import HoopTrackingReplica
from repro.baselines.vector_clock_full import (
    FullReplicationReplica,
    full_replication_factory,
)
from repro.clientserver import ClientServerCluster
from repro.core.protocol import Update, UpdateMessage
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.core.timestamps import EdgeTimestamp, VectorTimestamp
from repro.sim.cluster import Cluster
from repro.sim.delays import FixedDelay, LossyDelay, UniformDelay
from repro.sim.engine import BatchDeliveryEvent, BatchingConfig, ReliabilityConfig
from repro.sim.topologies import clique_placement, figure5_placement, triangle_placement
from repro.sim.workloads import run_workload, uniform_workload
from repro.wire import (
    EDGE_CODEC,
    HOOP_CODEC,
    MATRIX_CODEC,
    VECTOR_CODEC,
    ChannelDeltaDecoder,
    ChannelDeltaEncoder,
    MessageBatch,
    WireFormatError,
    decode_atom,
    decode_batch,
    decode_message,
    decode_svarint,
    decode_timestamp_frame,
    decode_uvarint,
    decode_value,
    encode_atom,
    encode_batch,
    encode_svarint,
    encode_timestamp_frame,
    encode_uvarint,
    encode_value,
    uvarint_size,
)


# ======================================================================
# Primitives
# ======================================================================

class TestPrimitives:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 16383, 16384, 2**40])
    def test_uvarint_round_trip_and_size(self, value):
        data = encode_uvarint(value)
        assert decode_uvarint(data) == (value, len(data))
        assert uvarint_size(value) == len(data)

    def test_uvarint_is_monotone_in_value(self):
        previous = 0
        for value in (0, 1, 127, 128, 20000, 2**32):
            assert uvarint_size(value) >= previous
            previous = uvarint_size(value)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(WireFormatError):
            encode_uvarint(-1)

    @pytest.mark.parametrize("value", [0, -1, 1, -64, 64, -(2**33), 2**33])
    def test_svarint_round_trip(self, value):
        data = encode_svarint(value)
        assert decode_svarint(data) == (value, len(data))

    @pytest.mark.parametrize("value", [0, 7, -3, 2**20, "x", "ring_12", "héllo", ""])
    def test_atom_round_trip(self, value):
        data = encode_atom(value)
        assert decode_atom(data) == (value, len(data))

    def test_truncated_input_raises(self):
        data = encode_uvarint(300)
        with pytest.raises(WireFormatError):
            decode_uvarint(data[:1])

    @pytest.mark.parametrize(
        "value",
        [None, True, False, 42, -7, 3.25, "hello", b"\x00\xff", ("tuple", 1), 2**80],
    )
    def test_value_round_trip(self, value):
        data = encode_value(value)
        assert decode_value(data) == (value, len(data))

    def test_huge_uvarint_round_trips(self):
        # Python ints are unbounded; the decoder must accept every varint
        # the encoder can produce (no arbitrary length cap).
        for value in (2**70, 2**80, 2**200):
            data = encode_uvarint(value)
            assert decode_uvarint(data) == (value, len(data))

    def test_bool_is_not_confused_with_int(self):
        assert decode_value(encode_value(True))[0] is True
        assert decode_value(encode_value(1))[0] == 1
        assert decode_value(encode_value(1))[0] is not True


# ======================================================================
# Timestamp codecs
# ======================================================================

class TestTimestampCodecs:
    def test_edge_full_round_trip(self):
        ts = EdgeTimestamp({(1, 2): 5, (2, 1): 0, (3, 1): 129, (1, 3): 7})
        frame = encode_timestamp_frame(ts)
        decoded, offset = decode_timestamp_frame(frame.data)
        assert decoded == ts and offset == len(frame.data)

    def test_vector_full_round_trip(self):
        ts = VectorTimestamp({1: 3, 2: 0, 9: 1000})
        frame = encode_timestamp_frame(ts)
        assert decode_timestamp_frame(frame.data)[0] == ts

    def test_matrix_dense_round_trip_and_beats_sparse(self):
        ids = [1, 2, 3, 4]
        ts = EdgeTimestamp({(a, b): a + b for a in ids for b in ids if a != b})
        dense = encode_timestamp_frame(ts, codec=MATRIX_CODEC)
        sparse = encode_timestamp_frame(ts, codec=EDGE_CODEC)
        assert decode_timestamp_frame(dense.data)[0] == ts
        assert len(dense.data) < len(sparse.data)

    def test_matrix_codec_rejects_incomplete_index(self):
        ts = EdgeTimestamp({(1, 2): 1, (2, 1): 2, (1, 3): 3})  # (3,1) etc. missing
        with pytest.raises(WireFormatError):
            MATRIX_CODEC.encode_full(ts)

    def test_hoop_tag_differs_from_edge(self):
        ts = EdgeTimestamp({(1, 2): 4})
        edge_frame = encode_timestamp_frame(ts, codec=EDGE_CODEC)
        hoop_frame = encode_timestamp_frame(ts, codec=HOOP_CODEC)
        assert edge_frame.data[0] != hoop_frame.data[0]
        assert decode_timestamp_frame(hoop_frame.data)[0] == ts

    def test_family_registration_per_replica_family(self):
        figure5 = ShareGraph.from_placement(figure5_placement())
        clique = ShareGraph.from_placement(clique_placement(4))
        assert EdgeIndexedReplica(figure5, 1).wire_codec() is EDGE_CODEC
        assert FullTrackReplica(figure5, 1).wire_codec() is MATRIX_CODEC
        assert FullReplicationReplica(clique, 1).wire_codec() is VECTOR_CODEC
        assert HoopTrackingReplica(figure5, 1).wire_codec() is HOOP_CODEC

    def test_delta_round_trip(self):
        ts = EdgeTimestamp({(1, 2): 5, (3, 1): 129, (2, 1): 0})
        ts2 = EdgeTimestamp({(1, 2): 6, (3, 1): 129, (2, 1): 4})
        frame = encode_timestamp_frame(ts2, prev=ts)
        assert frame.used_delta
        assert len(frame.data) < frame.full_size
        assert decode_timestamp_frame(frame.data, prev=ts)[0] == ts2

    def test_delta_never_loses_to_full(self):
        # Every counter changed: the codec must fall back to whichever
        # encoding is smaller, so the frame never exceeds the full size.
        ts = EdgeTimestamp({(i, j): 1 for i in range(4) for j in range(4) if i != j})
        ts2 = EdgeTimestamp(
            {(i, j): 2**40 for i in range(4) for j in range(4) if i != j}
        )
        frame = encode_timestamp_frame(ts2, prev=ts)
        assert len(frame.data) <= frame.full_size

    def test_delta_falls_back_on_index_change(self):
        ts = EdgeTimestamp({(1, 2): 5})
        ts2 = EdgeTimestamp({(1, 2): 6, (2, 1): 1})
        frame = encode_timestamp_frame(ts2, prev=ts)
        assert not frame.used_delta
        assert decode_timestamp_frame(frame.data)[0] == ts2

    def test_delta_falls_back_on_counter_decrease(self):
        ts = EdgeTimestamp({(1, 2): 5})
        ts2 = EdgeTimestamp({(1, 2): 4})
        frame = encode_timestamp_frame(ts2, prev=ts)
        assert not frame.used_delta

    def test_delta_without_state_raises_on_decode(self):
        ts = EdgeTimestamp({(1, 2): 5})
        ts2 = EdgeTimestamp({(1, 2): 6})
        frame = encode_timestamp_frame(ts2, prev=ts)
        assert frame.used_delta
        with pytest.raises(WireFormatError):
            decode_timestamp_frame(frame.data)


# ======================================================================
# Message envelopes and the per-channel delta stream
# ======================================================================

def _message(seq: int, ts, sender=1, destination=2, payload=True) -> UpdateMessage:
    return UpdateMessage(
        update=Update(issuer=sender, seq=seq, register="x", value=f"v{seq}"),
        sender=sender,
        destination=destination,
        metadata=ts,
        metadata_size=ts.size_counters(),
        payload=payload,
    )


class TestMessageEnvelopes:
    def test_standalone_round_trip_and_size_split(self):
        ts = EdgeTimestamp({(1, 2): 5, (2, 1): 3})
        message = _message(1, ts)
        data = message.to_wire()
        assert UpdateMessage.from_wire(data) == message
        sizes = message.encoded_size()
        assert sizes.total_bytes == len(data)
        assert sizes.header_bytes > 0
        assert sizes.timestamp_bytes > 0
        assert sizes.payload_bytes > 0

    def test_every_truncation_raises_wire_format_error(self):
        # The decode contract: malformed/truncated input raises
        # WireFormatError (never IndexError or a raw UnicodeDecodeError).
        ts = EdgeTimestamp({(1, 2): 5, (2, 1): 300})
        data = _message(1, ts).to_wire()
        for cut in range(len(data)):
            with pytest.raises(WireFormatError):
                decode_message(data[:cut])

    def test_metadata_only_message_ships_no_value(self):
        ts = EdgeTimestamp({(1, 2): 5})
        message = _message(1, ts, payload=False)
        sizes = message.encoded_size()
        assert sizes.payload_bytes == 0
        decoded = UpdateMessage.from_wire(message.to_wire())
        assert decoded.update.value is None
        assert decoded.update.uid == message.update.uid
        assert decoded.metadata == ts and not decoded.payload

    def test_channel_delta_stream_round_trip(self):
        encoder, decoder = ChannelDeltaEncoder(), ChannelDeltaDecoder()
        ts_a = EdgeTimestamp({(1, 2): 0, (3, 2): 0})
        ts_b = VectorTimestamp({1: 0, 2: 0})
        stream = []
        for seq in range(1, 6):
            ts_a = ts_a.incremented([(1, 2)])
            ts_b = ts_b.incremented(1)
            stream.append(_message(seq, ts_a, sender=1, destination=2))
            stream.append(_message(seq, ts_b, sender=1, destination=3))
        encoded = [
            (m, encoder.encode_message(m)[0]) for m in stream
        ]
        # First frame per channel is full, the rest delta.
        for original, data in encoded:
            decoded, offset = decoder.decode_message(
                data, 0, original.sender, original.destination
            )
            assert decoded == original and offset == len(data)

    def test_encoder_reset_forces_full_frame(self):
        encoder = ChannelDeltaEncoder()
        ts = EdgeTimestamp({(1, 2): 1})
        encoder.encode_message(_message(1, ts))
        encoder.reset((1, 2))
        _, sizes = encoder.encode_message(_message(2, ts.incremented([(1, 2)])))
        assert sizes.full_frames == 1 and sizes.delta_frames == 0

    def test_batch_envelope_round_trip(self):
        ts = VectorTimestamp({1: 1, 2: 0})
        messages = tuple(
            _message(seq, ts.incremented(1), sender=1, destination=2)
            for seq in range(1, 4)
        )
        batch = MessageBatch(sender=1, destination=2, seq=0, messages=messages)
        data, sizes = encode_batch(batch)
        decoded, offset = decode_batch(data)
        assert decoded == batch and offset == len(data)
        assert sizes.total_bytes == len(data)

    def test_batch_rejects_foreign_channel_message(self):
        ts = VectorTimestamp({1: 1})
        stray = _message(1, ts, sender=3, destination=2)
        batch = MessageBatch(sender=1, destination=2, seq=0, messages=(stray,))
        with pytest.raises(WireFormatError):
            encode_batch(batch)


# ======================================================================
# The batching transport
# ======================================================================

def _clique_cluster(batching, seed=3, delay=None, factory=full_replication_factory,
                    size=6):
    graph = ShareGraph.from_placement(clique_placement(size))
    return graph, Cluster(
        graph,
        replica_factory=factory,
        delay_model=delay or UniformDelay(1, 10),
        seed=seed,
        batching=batching,
    )


class TestBatchingTransport:
    def test_flush_by_count(self):
        graph, cluster = _clique_cluster(BatchingConfig(max_messages=5, max_delay=100.0))
        for index in range(5):
            cluster.write(1, "g", f"v{index}")
        # 5 writes x 5 destinations: every channel window has exactly 5
        # messages, so all flushed by count despite the far deadline.
        assert cluster.transport.open_batch_messages == 0
        assert cluster.network.stats.batches_sent == 5
        cluster.run_until_quiescent()
        assert cluster.check_consistency().is_causally_consistent

    def test_flush_by_kernel_deadline(self):
        graph, cluster = _clique_cluster(
            BatchingConfig(max_messages=100, max_delay=2.5), delay=FixedDelay(1.0)
        )
        cluster.write(1, "g", "v0")
        assert cluster.network.stats.batches_sent == 0
        assert cluster.transport.open_batch_messages == 5
        cluster.run_until_quiescent()
        assert cluster.network.stats.batches_sent == 5
        # Window wait (2.5) + wire delay (1.0) shows up in delivery latency.
        assert cluster.network.stats.mean_latency == pytest.approx(3.5)
        for rid in range(2, 7):
            assert cluster.replica(rid).store["g"] == "v0"

    def test_per_channel_fifo_across_batches(self):
        # Wide random delays would reorder unbatched messages; batches on a
        # channel must still arrive in flush order (the TCP-stream model).
        graph, cluster = _clique_cluster(
            BatchingConfig(max_messages=2, max_delay=0.0),
            delay=UniformDelay(1, 50),
        )
        for index in range(20):
            cluster.write(1, "g", index)
            cluster.kernel.schedule_after(0.01, _noop_timer())
            cluster.step()
        cluster.run_until_quiescent()
        replica = cluster.replica(2)
        applied_values = [u.value for u in replica.applied if u.issuer == 1]
        assert applied_values == sorted(applied_values)
        assert cluster.check_consistency().is_causally_consistent

    def test_batching_composes_with_hold_and_release(self):
        graph, cluster = _clique_cluster(BatchingConfig(max_messages=2, max_delay=1.0))
        cluster.network.hold(1, 2)
        cluster.write(1, "g", "a")
        cluster.write(1, "g", "b")
        cluster.run_until_quiescent()
        # The 1->2 batch flushed but is parked; everyone else caught up.
        assert cluster.transport.held_count == 2
        assert cluster.replica(2).store["g"] is None
        assert cluster.replica(3).store["g"] == "b"
        cluster.network.release(1, 2)
        cluster.run_until_quiescent()
        assert cluster.replica(2).store["g"] == "b"
        assert cluster.check_consistency().is_causally_consistent

    def test_batching_composes_with_partition_and_heal(self):
        graph, cluster = _clique_cluster(BatchingConfig(max_messages=2, max_delay=1.0))
        cluster.network.partition({1, 2, 3}, {4, 5, 6})
        cluster.write(1, "g", "inside")
        cluster.run_until_quiescent()
        assert cluster.replica(3).store["g"] == "inside"
        assert cluster.replica(4).store["g"] is None
        assert cluster.transport.held_count == 3  # one per far-side replica
        cluster.network.heal()
        cluster.run_until_quiescent()
        assert cluster.replica(4).store["g"] == "inside"
        assert cluster.check_consistency().is_causally_consistent

    def test_batching_composes_with_loss_and_reliability(self):
        graph = ShareGraph.from_placement(clique_placement(4))
        cluster = Cluster(
            graph,
            replica_factory=full_replication_factory,
            delay_model=LossyDelay(inner=UniformDelay(1, 5), drop_probability=0.3),
            seed=11,
            batching=BatchingConfig(max_messages=3, max_delay=2.0),
        )
        cluster.transport.enable_reliability(
            ReliabilityConfig(resend_timeout=20.0, max_retries=6)
        )
        workload = uniform_workload(graph, 60, seed=11)
        result = run_workload(cluster, workload)
        stats = cluster.network.stats
        assert stats.batches_dropped > 0
        assert stats.retransmissions > 0
        assert result.consistent, "lossy batched channels must stay consistent"
        # Retransmitted copies are booked too: the per-channel message
        # counts cover every copy put on the wire, batched or re-sent.
        assert (
            sum(c.messages for c in stats.per_channel.values())
            == stats.messages_sent + stats.retransmissions
        )

    def test_dropped_batch_resets_the_delta_stream(self):
        # Every frame on the wire must be decodable by a receiver that got
        # every *delivered* envelope: after a dropped batch, the channel's
        # next frame goes full instead of delta-chaining through the loss.
        graph = ShareGraph.from_placement(clique_placement(4))
        cluster = Cluster(
            graph,
            replica_factory=full_replication_factory,
            delay_model=LossyDelay(
                inner=FixedDelay(1.0),
                drop_probability=1.0,
                channels=frozenset({(1, 2)}),
            ),
            seed=2,
            batching=BatchingConfig(max_messages=1, max_delay=1.0),
        )
        cluster.write(1, "g", "a")
        cluster.write(1, "g", "b")
        cluster.run_until_quiescent()
        stats = cluster.network.stats
        assert stats.batches_dropped == 2
        # Channels 1->3 and 1->4 delta their second frame; 1->2 was reset
        # after each drop, so both of its frames shipped full.
        assert stats.delta_frames_sent == 2
        assert stats.full_frames_sent == 4

    def test_batch_lost_to_crashed_destination_is_counted(self):
        graph, cluster = _clique_cluster(
            BatchingConfig(max_messages=2, max_delay=0.5), delay=FixedDelay(5.0)
        )

        class _DownOracle:
            def is_down(self, rid):
                return rid == 2

            def note_applies(self, *args):  # pragma: no cover - protocol hook
                pass

        cluster.fault_injector = _DownOracle()
        cluster.write(1, "g", "a")
        cluster.write(1, "g", "b")
        cluster.run_until_quiescent()
        assert cluster.network.stats.messages_lost_to_crash == 2
        assert cluster.replica(3).store["g"] == "b"

    def test_in_flight_batch_across_crash_window_goes_stale(self):
        # B1 (1->2) is lost while the destination is down; B2, flushed
        # while B1 was still in flight, delta-chains through B1 and must
        # die on arrival even though the destination is back up — a real
        # receiver could never decode it (its predecessor never arrived).
        graph, cluster = _clique_cluster(
            BatchingConfig(max_messages=1, max_delay=0.1), delay=FixedDelay(5.0),
            size=3,
        )

        class _WindowOracle:
            def is_down(self, rid):
                return rid == 2 and 4.0 <= cluster.now <= 5.5

            def note_applies(self, *args):  # pragma: no cover - protocol hook
                pass

        cluster.fault_injector = _WindowOracle()
        cluster.write(1, "g", "a")  # flushed ~t0, arrives t5 (down -> lost)
        cluster.kernel.schedule_after(1.0, _noop_timer())
        cluster.step()  # advance to t1
        cluster.write(1, "g", "b")  # flushed t1, arrives t6 (up, but stale)
        cluster.run_until_quiescent()
        stats = cluster.network.stats
        # Both 1->2 batches are casualties of the crash cut; replica 3's
        # stream was untouched and delivered both of its batches.
        assert stats.messages_lost_to_crash == 2
        assert cluster.replica(2).store["g"] is None
        assert cluster.replica(3).store["g"] == "b"

    def test_sender_crash_does_not_stale_in_flight_batches_to_live_peers(self):
        # A crash of the *sender* only kills its encoder state; batches
        # already in flight to live receivers stay decodable (their state
        # is intact, FIFO holds) and must be delivered — without any
        # reliability layer to fall back on.
        from repro.sim.faults import FaultInjector, FaultSchedule, crash, restart

        graph, cluster = _clique_cluster(
            BatchingConfig(max_messages=1, max_delay=0.1), delay=FixedDelay(5.0),
            size=3,
        )
        injector = FaultInjector(cluster)
        injector.install(
            FaultSchedule(name="sender-crash", actions=(crash(2.0, 1), restart(10.0, 1)))
        )
        cluster.write(1, "g", "a")  # in flight until t=5; sender crashes at t=2
        cluster.run_until_quiescent()
        assert cluster.replica(2).store["g"] == "a"
        assert cluster.replica(3).store["g"] == "a"
        assert cluster.network.stats.messages_lost_to_crash == 0
        assert cluster.check_consistency().is_causally_consistent

    def test_fault_injector_crash_restart_with_batching_stays_consistent(self):
        # The end-to-end composition the epoch mechanism exists for:
        # crashes sever batched streams, resync re-sends the contents as
        # full-frame singles, and the checker must stay green throughout.
        from repro.sim.faults import FaultInjector, random_fault_schedule
        from repro.sim.workloads import poisson_workload, run_open_loop

        graph = ShareGraph.from_placement(figure5_placement())
        cluster = Cluster(
            graph,
            delay_model=UniformDelay(1, 10),
            seed=15,
            batching=BatchingConfig(max_messages=4, max_delay=3.0),
        )
        injector = FaultInjector(cluster)
        injector.install(
            random_fault_schedule(
                graph.replica_ids,
                120.0,
                crashes=2,
                downtime=20.0,
                partition_duration=30.0,
                partition_at=48.0,
                seed=16,
                name="batched-faults",
            )
        )
        result = run_open_loop(
            cluster, poisson_workload(graph, rate=1.0, duration=120.0, seed=15)
        )
        assert result.consistent, "batching must survive crash/restart/partition"
        assert cluster.network.stats.batches_sent > 0
        assert cluster.metrics.crashes == 2 and cluster.metrics.restarts == 2

    def test_adversarial_scripted_delay_bypasses_batching(self):
        graph = ShareGraph.from_placement(triangle_placement())
        cluster = Cluster(
            graph, seed=1, batching=BatchingConfig(max_messages=8, max_delay=5.0)
        )
        replica = cluster.replica(1)
        messages = replica.write("x", "direct")
        cluster.network.send(messages[0], delay=0.5)
        assert cluster.network.stats.batches_sent == 0
        assert cluster.kernel.pending_of(BatchDeliveryEvent) == 0
        cluster.run_until_quiescent()
        assert cluster.replica(2).store["x"] == "direct"

    def test_same_seed_batched_runs_are_deterministic(self):
        graph = ShareGraph.from_placement(figure5_placement())
        workload = uniform_workload(graph, 120, seed=9)

        def run():
            cluster = Cluster(
                graph,
                delay_model=UniformDelay(1, 10),
                seed=9,
                batching=BatchingConfig(max_messages=4, max_delay=3.0),
            )
            run_workload(cluster, workload, check=False)
            stats = cluster.network.stats
            return (
                stats.batches_sent,
                stats.bytes_sent,
                stats.delta_frames_sent,
                [
                    (rid, tuple(u.uid for u in replica.applied))
                    for rid, replica in sorted(cluster.replicas.items())
                ],
            )

        assert run() == run()

    def test_byte_accounting_consistency(self):
        graph = ShareGraph.from_placement(figure5_placement())
        workload = uniform_workload(graph, 150, seed=4)
        cluster = Cluster(
            graph,
            delay_model=UniformDelay(1, 10),
            seed=4,
            batching=BatchingConfig(max_messages=8, max_delay=4.0),
        )
        result = run_workload(cluster, workload)
        stats = cluster.network.stats
        assert result.consistent
        assert stats.batched_messages_sent == stats.messages_sent
        assert stats.delta_frames_sent + stats.full_frames_sent == stats.messages_sent
        assert stats.timestamp_bytes_sent < stats.timestamp_bytes_full
        assert stats.bytes_sent == (
            stats.header_bytes_sent
            + stats.timestamp_bytes_sent
            + stats.payload_bytes_sent
        )
        per_channel = stats.per_channel.values()
        assert sum(c.messages for c in per_channel) == stats.messages_sent
        assert sum(c.batches for c in per_channel) == stats.batches_sent
        assert sum(c.header_bytes for c in per_channel) == stats.header_bytes_sent
        assert sum(c.timestamp_bytes for c in per_channel) == stats.timestamp_bytes_sent
        assert sum(c.payload_bytes for c in per_channel) == stats.payload_bytes_sent

    def test_batched_equals_unbatched_applied_sets(self):
        graph = ShareGraph.from_placement(figure5_placement())
        workload = uniform_workload(graph, 150, seed=6)

        def applied_sets(batching):
            cluster = Cluster(
                graph, delay_model=UniformDelay(1, 10), seed=6, batching=batching
            )
            result = run_workload(cluster, workload)
            assert result.consistent
            return {
                rid: frozenset(u.uid for u in replica.applied)
                for rid, replica in cluster.replicas.items()
            }

        assert applied_sets(None) == applied_sets(
            BatchingConfig(max_messages=8, max_delay=4.0)
        )


class TestBatchingBothArchitectures:
    @pytest.mark.parametrize("factory", [None, full_track_factory])
    def test_peer_to_peer_consistency(self, factory):
        graph = ShareGraph.from_placement(figure5_placement())
        kwargs = {"replica_factory": factory} if factory else {}
        cluster = Cluster(
            graph,
            delay_model=UniformDelay(1, 10),
            seed=5,
            batching=BatchingConfig(max_messages=4, max_delay=3.0),
            **kwargs,
        )
        result = run_workload(cluster, uniform_workload(graph, 150, seed=5))
        assert result.consistent
        assert cluster.network.stats.batches_sent > 0

    def test_client_server_consistency(self):
        graph = ShareGraph.from_placement(figure5_placement())
        cluster = ClientServerCluster.with_colocated_clients(
            graph,
            delay_model=UniformDelay(1, 10),
            seed=5,
            batching=BatchingConfig(max_messages=4, max_delay=3.0),
        )
        result = run_workload(cluster, uniform_workload(graph, 150, seed=5))
        assert result.consistent
        assert cluster.network.stats.batches_sent > 0
        assert cluster.network.stats.delta_frames_sent > 0


def _noop_timer():
    from repro.sim.engine import TimerEvent

    return TimerEvent(callback=lambda host, time: None, tag="noop")


# ======================================================================
# E16 harness smoke
# ======================================================================

class TestWireOverheadExperiment:
    def test_e16_rows_well_formed_and_delta_wins(self):
        from repro.analysis.experiments import (
            exp_wire_overhead,
            render_wire_channels,
            render_wire_overhead,
        )

        rows = exp_wire_overhead(ops=60, windows=(None, (8, 4.0)))
        assert rows and all(row.consistent for row in rows)
        families = {row.protocol for row in rows}
        assert len(families) == 4  # all four codec families covered
        for row in rows:
            assert row.total_bytes == (
                row.header_bytes + row.timestamp_bytes + row.payload_bytes
            )
            if row.window == "off":
                assert row.batches == 0
                assert row.timestamp_bytes == row.timestamp_bytes_full
            else:
                assert row.batches > 0
                assert row.timestamp_bytes <= row.timestamp_bytes_full
        # Steady-state delta encoding beats full encoding in every windowed
        # cell of the sweep.
        windowed = [row for row in rows if row.window != "off"]
        assert all(row.delta_savings > 0 for row in windowed)
        table = render_wire_overhead(rows)
        assert "bound B/msg" in table

        graph = ShareGraph.from_placement(figure5_placement())
        cluster = Cluster(
            graph, seed=1, batching=BatchingConfig(max_messages=4, max_delay=2.0)
        )
        run_workload(cluster, uniform_workload(graph, 40, seed=1), check=False)
        channels = render_wire_channels(cluster.network.stats)
        assert "->" in channels and "timestamp B" in channels
