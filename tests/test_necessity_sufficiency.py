"""Integration tests for the two halves of Theorem 8.

*Necessity*: a protocol oblivious to a timestamp-graph edge can be driven
into a safety violation by an adversarial delivery schedule (the executable
counterpart of the Theorem 8 proof cases).

*Sufficiency*: the paper's algorithm is causally consistent on every topology
in the suite, under random and adversarial delivery schedules.
"""

from __future__ import annotations

import pytest

from placements import all_small_placements
from repro.analysis.experiments import (
    _run_figure5_schedule,
    _run_triangle_schedule,
    exp_necessity,
    oblivious_factory,
)
from repro.baselines import incident_only_factory
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster, edge_indexed_factory
from repro.sim.delays import UniformDelay
from repro.sim.topologies import ring_placement
from repro.sim.workloads import causal_chain_workload, run_workload, uniform_workload


class TestNecessity:
    def test_triangle_schedule_paper_algorithm_is_safe(self):
        report = _run_triangle_schedule(edge_indexed_factory)
        assert report.is_causally_consistent

    def test_triangle_schedule_incident_only_violates_safety(self):
        report = _run_triangle_schedule(incident_only_factory)
        assert not report.is_safe
        violation = report.safety_violations[0]
        # Replica 3 applied the y-update before the z-update it depends on.
        assert violation.replica_id == 3
        assert violation.applied.register == "y"
        assert violation.missing.register == "z"

    def test_figure5_schedule_paper_algorithm_is_safe(self):
        report = _run_figure5_schedule(edge_indexed_factory)
        assert report.is_causally_consistent

    def test_figure5_schedule_oblivious_to_e43_violates_safety(self):
        factory = oblivious_factory({1: frozenset({(4, 3)})})
        report = _run_figure5_schedule(factory)
        assert not report.is_safe
        violation = report.safety_violations[0]
        assert violation.replica_id == 3
        assert violation.missing.register == "z"

    def test_exp_necessity_summary(self):
        results = exp_necessity()
        assert len(results) == 2
        for result in results:
            assert result.paper_ok
            assert result.oblivious_violated

    def test_incident_only_violates_on_larger_ring_chain(self):
        """Driving a dependency chain around a ring defeats incident-only tracking."""
        n = 5
        graph = ShareGraph.from_placement(ring_placement(n))
        from repro.sim.delays import FixedDelay

        cluster = Cluster(
            graph, replica_factory=incident_only_factory,
            delay_model=FixedDelay(1.0), seed=0,
        )
        cluster.network.hold(1, n)
        cluster.write(1, f"ring_{n}", "direct")
        for hop in range(1, n):
            cluster.write(hop, f"ring_{hop}", f"chain{hop}")
            cluster.run_until_quiescent()
        cluster.network.release_all()
        cluster.run_until_quiescent()
        assert not cluster.check_consistency().is_safe

    def test_paper_algorithm_safe_on_same_ring_chain(self):
        n = 5
        graph = ShareGraph.from_placement(ring_placement(n))
        from repro.sim.delays import FixedDelay

        cluster = Cluster(
            graph, replica_factory=edge_indexed_factory,
            delay_model=FixedDelay(1.0), seed=0,
        )
        cluster.network.hold(1, n)
        cluster.write(1, f"ring_{n}", "direct")
        for hop in range(1, n):
            cluster.write(hop, f"ring_{hop}", f"chain{hop}")
            cluster.run_until_quiescent()
        cluster.network.release_all()
        cluster.run_until_quiescent()
        assert cluster.check_consistency().is_causally_consistent


@pytest.mark.parametrize("topology_name", sorted(all_small_placements()))
class TestSufficiency:
    def test_uniform_workload_consistent(self, topology_name):
        graph = ShareGraph.from_placement(all_small_placements()[topology_name])
        cluster = Cluster(graph, delay_model=UniformDelay(1, 25), seed=11)
        result = run_workload(cluster, uniform_workload(graph, 120, seed=11))
        assert result.consistent
        assert result.liveness_violations == 0

    def test_causal_chain_workload_consistent(self, topology_name):
        graph = ShareGraph.from_placement(all_small_placements()[topology_name])
        cluster = Cluster(graph, delay_model=UniformDelay(1, 25), seed=13)
        workload = causal_chain_workload(graph, num_chains=8, chain_length=4, seed=13)
        result = run_workload(cluster, workload, interleave_steps=2)
        assert result.consistent

    def test_buffered_propagation_consistent(self, topology_name):
        """All operations issued before any message is delivered (worst buffering)."""
        graph = ShareGraph.from_placement(all_small_placements()[topology_name])
        cluster = Cluster(graph, delay_model=UniformDelay(1, 50), seed=17)
        result = run_workload(
            cluster, uniform_workload(graph, 60, seed=17), interleave_steps=0
        )
        assert result.consistent
