"""Unit tests for repro.sim.cluster, repro.sim.workloads and repro.sim.metrics."""

from __future__ import annotations

import pytest

from repro.baselines import full_replication_factory
from repro.core.errors import UnknownReplicaError
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster, build_cluster, edge_indexed_factory
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.metrics import (
    all_edges_profile,
    compare_protocols,
    edge_indexed_profile,
    format_table,
    full_replication_profile,
    incident_only_profile,
    measure_false_dependencies,
)
from repro.sim.topologies import figure5_placement, ring_placement, triangle_placement
from repro.sim.workloads import (
    Operation,
    causal_chain_workload,
    hotspot_workload,
    read_heavy_workload,
    run_workload,
    uniform_workload,
)


@pytest.fixture
def tri_cluster():
    graph = ShareGraph.from_placement(triangle_placement())
    return build_cluster(graph, delay_model=FixedDelay(1.0), seed=0)


class TestCluster:
    def test_write_then_read_locally(self, tri_cluster):
        tri_cluster.write(1, "x", "hello")
        assert tri_cluster.read(1, "x") == "hello"

    def test_propagation_after_quiescence(self, tri_cluster):
        tri_cluster.write(1, "x", "hello")
        tri_cluster.run_until_quiescent()
        assert tri_cluster.read(2, "x") == "hello"

    def test_values_across_owners(self, tri_cluster):
        tri_cluster.write(1, "x", 5)
        tri_cluster.run_until_quiescent()
        assert tri_cluster.values("x") == {1: 5, 2: 5}

    def test_unknown_replica_raises(self, tri_cluster):
        with pytest.raises(UnknownReplicaError):
            tri_cluster.write(9, "x", 1)

    def test_step_returns_false_when_idle(self, tri_cluster):
        assert tri_cluster.step() is False

    def test_metrics_counters(self, tri_cluster):
        tri_cluster.write(1, "x", 1)
        tri_cluster.read(1, "x")
        tri_cluster.run_until_quiescent()
        assert tri_cluster.metrics.writes == 1
        assert tri_cluster.metrics.reads == 1
        assert tri_cluster.metrics.applies == 1
        assert tri_cluster.metrics.mean_apply_latency > 0

    def test_metadata_sizes(self, tri_cluster):
        sizes = tri_cluster.metadata_sizes()
        assert sizes == {1: 6, 2: 6, 3: 6}

    def test_check_consistency_on_simple_run(self, tri_cluster):
        tri_cluster.write(1, "x", 1)
        tri_cluster.write(2, "y", 2)
        tri_cluster.run_until_quiescent()
        report = tri_cluster.check_consistency()
        assert report.is_causally_consistent

    def test_pending_updates_zero_after_quiescence(self, tri_cluster):
        tri_cluster.write(1, "x", 1)
        tri_cluster.run_until_quiescent()
        assert tri_cluster.pending_updates() == 0

    def test_total_metadata_counters_sent(self, tri_cluster):
        tri_cluster.write(1, "x", 1)
        assert tri_cluster.total_metadata_counters_sent() == 6


class TestWorkloads:
    def make_graph(self):
        return ShareGraph.from_placement(figure5_placement())

    def test_uniform_workload_counts(self):
        graph = self.make_graph()
        workload = uniform_workload(graph, 100, write_fraction=0.5, seed=1)
        assert len(workload) == 100
        assert workload.write_count + workload.read_count == 100
        assert 20 < workload.write_count < 80

    def test_uniform_workload_targets_stored_registers(self):
        graph = self.make_graph()
        workload = uniform_workload(graph, 200, seed=2)
        for op in workload.operations:
            assert graph.placement.stores_register(op.replica_id, op.register)

    def test_workload_determinism(self):
        graph = self.make_graph()
        assert uniform_workload(graph, 50, seed=3) == uniform_workload(graph, 50, seed=3)
        assert uniform_workload(graph, 50, seed=3) != uniform_workload(graph, 50, seed=4)

    def test_hotspot_workload_skews_registers(self):
        graph = self.make_graph()
        workload = hotspot_workload(graph, 300, hot_fraction=0.9, seed=5)
        # The most common register should dominate.
        from collections import Counter

        counts = Counter(op.register for op in workload.operations)
        assert counts.most_common(1)[0][1] > 300 / len(graph.placement.registers)

    def test_causal_chain_workload_follows_adjacency(self):
        graph = self.make_graph()
        workload = causal_chain_workload(graph, num_chains=5, chain_length=4, seed=6)
        for op in workload.operations:
            assert graph.placement.stores_register(op.replica_id, op.register)

    def test_read_heavy_workload_is_mostly_reads(self):
        graph = self.make_graph()
        workload = read_heavy_workload(graph, 200, seed=7)
        assert workload.read_count > workload.write_count

    def test_run_workload_consistent(self):
        graph = self.make_graph()
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=1)
        result = run_workload(cluster, uniform_workload(graph, 150, seed=1))
        assert result.consistent
        assert result.safety_violations == 0
        assert result.messages_sent == cluster.network.stats.messages_sent
        assert "consistency OK" in result.summary()

    def test_run_workload_with_no_interleave(self):
        graph = self.make_graph()
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=2)
        result = run_workload(cluster, uniform_workload(graph, 80, seed=2), interleave_steps=0)
        assert result.consistent


class TestMetadataProfiles:
    def test_edge_indexed_profile(self):
        graph = ShareGraph.from_placement(figure5_placement())
        profile = edge_indexed_profile(graph)
        assert profile.counters_per_replica[1] == 8
        assert profile.max_counters == 10
        assert profile.mean_counters == pytest.approx((8 + 10 + 9 + 10) / 4)
        assert profile.total_storage == graph.placement.total_storage_cost()
        bits = profile.bits_per_replica(max_updates=15)
        assert bits[1] == pytest.approx(32.0)

    def test_full_replication_profile(self):
        graph = ShareGraph.from_placement(figure5_placement())
        profile = full_replication_profile(graph)
        assert all(v == 4 for v in profile.counters_per_replica.values())
        assert all(v == len(graph.placement.registers) for v in profile.storage_per_replica.values())

    def test_all_edges_and_incident_profiles(self):
        graph = ShareGraph.from_placement(ring_placement(5))
        assert all(v == 10 for v in all_edges_profile(graph).counters_per_replica.values())
        assert all(v == 4 for v in incident_only_profile(graph).counters_per_replica.values())

    def test_compare_protocols_and_format_table(self):
        graph = ShareGraph.from_placement(triangle_placement())
        workload = uniform_workload(graph, 40, seed=3)
        rows = compare_protocols(
            graph,
            {"paper": edge_indexed_factory, "full": full_replication_factory},
            workload,
            topology_name="triangle",
            seed=3,
        )
        assert len(rows) == 2
        assert {r.protocol for r in rows} == {"paper", "full"}
        paper_row = next(r for r in rows if r.protocol == "paper")
        assert paper_row.safety_violations == 0
        table = format_table(rows)
        assert "protocol" in table and "triangle" in table

    def test_measure_false_dependencies_runs(self):
        graph = ShareGraph.from_placement(ring_placement(5))
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=4)
        run_workload(cluster, uniform_workload(graph, 60, seed=4))
        stats = measure_false_dependencies(cluster)
        assert stats.total_applies > 0
        assert 0.0 <= stats.false_dependency_rate <= 1.0
