"""Unit and integration tests for the baseline protocols."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AllEdgesReplica,
    FullReplicationReplica,
    FullTrackReplica,
    HoopTrackingReplica,
    IncidentOnlyReplica,
    all_edges_factory,
    full_replication_factory,
    full_track_factory,
    hoop_tracking_factory,
    incident_only_factory,
)
from repro.baselines.hoop_tracking import modified_hoop_tracking_factory
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import timestamp_edges
from repro.sim.cluster import Cluster, build_cluster
from repro.sim.delays import UniformDelay
from repro.sim.topologies import (
    figure5_placement,
    ring_placement,
    tree_placement,
    triangle_placement,
)
from repro.sim.workloads import causal_chain_workload, run_workload, uniform_workload


SAFE_FACTORIES = {
    "all_edges": all_edges_factory,
    "full_replication": full_replication_factory,
    "full_track": full_track_factory,
    "hoop_original": hoop_tracking_factory,
}


class TestMetadataSizes:
    def test_full_replication_vector_length_R(self):
        graph = ShareGraph.from_placement(figure5_placement())
        replica = FullReplicationReplica(graph, 1)
        assert replica.metadata_size() == 4
        # Full replication stores every register at every replica.
        assert replica.registers == graph.placement.registers

    def test_all_edges_tracks_every_edge(self):
        graph = ShareGraph.from_placement(figure5_placement())
        replica = AllEdgesReplica(graph, 1)
        assert replica.metadata_size() == len(graph.edges)
        # The paper's edge set is a subset of this.
        assert timestamp_edges(graph, 1) <= replica.timestamp_graph.edges

    def test_incident_only_tracks_incident_edges(self):
        graph = ShareGraph.from_placement(ring_placement(6))
        replica = IncidentOnlyReplica(graph, 1)
        assert replica.metadata_size() == 4
        assert replica.timestamp_graph.edges == graph.incident_edges(1)

    def test_full_track_matrix_size(self):
        graph = ShareGraph.from_placement(tree_placement(5))
        replica = FullTrackReplica(graph, 1)
        assert replica.metadata_size() == 5 * 4

    def test_hoop_tracking_includes_incident_edges(self):
        graph = ShareGraph.from_placement(figure5_placement())
        replica = HoopTrackingReplica(graph, 1)
        assert graph.incident_edges(1) <= replica.timestamp_graph.edges

    def test_metadata_ordering_paper_vs_baselines(self):
        """|E_i| <= |all edges| <= |full-track matrix| on every topology."""
        for placement in (figure5_placement(), ring_placement(6), tree_placement(7)):
            graph = ShareGraph.from_placement(placement)
            for rid in graph.replica_ids:
                paper = len(timestamp_edges(graph, rid))
                all_edges = len(graph.edges)
                full_track = graph.num_replicas * (graph.num_replicas - 1)
                assert paper <= all_edges <= full_track


class TestBehaviour:
    def test_full_replication_applies_everything_everywhere(self):
        graph = ShareGraph.from_placement(figure5_placement())
        cluster = build_cluster(graph, replica_factory=full_replication_factory, seed=1)
        cluster.write(3, "c", "only-at-3-originally")
        cluster.run_until_quiescent()
        # Under full replication even replica 1 (which does not store c in the
        # partial placement) now has the value.
        assert cluster.replicas[1].store["c"] == "only-at-3-originally"

    def test_full_replication_fifo_causal_delivery(self):
        graph = ShareGraph.from_placement(triangle_placement())
        replicas = {rid: FullReplicationReplica(graph, rid) for rid in graph.replica_ids}
        m1 = [m for m in replicas[1].write("x", "a") if m.destination == 2][0]
        m2 = [m for m in replicas[1].write("x", "b") if m.destination == 2][0]
        replicas[2].receive(m2)
        assert replicas[2].apply_ready() == []
        replicas[2].receive(m1)
        assert [u.value for u in replicas[2].apply_ready()] == ["a", "b"]

    def test_full_track_waits_for_transitive_dependency(self):
        graph = ShareGraph.from_placement(triangle_placement())
        replicas = {rid: FullTrackReplica(graph, rid) for rid in graph.replica_ids}
        mz = replicas[1].write("z", "z1")[0]           # 1 -> 3
        mx = replicas[1].write("x", "x1")[0]           # 1 -> 2
        replicas[2].receive(mx)
        replicas[2].apply_ready()
        my = replicas[2].write("y", "y1")[0]           # 2 -> 3
        replicas[3].receive(my)
        assert replicas[3].apply_ready() == []
        replicas[3].receive(mz)
        assert len(replicas[3].apply_ready()) == 2

    @pytest.mark.parametrize("name", sorted(SAFE_FACTORIES))
    @pytest.mark.parametrize("placement_builder", [triangle_placement, figure5_placement])
    def test_safe_baselines_are_causally_consistent(self, name, placement_builder):
        graph = ShareGraph.from_placement(placement_builder())
        cluster = Cluster(
            graph,
            replica_factory=SAFE_FACTORIES[name],
            delay_model=UniformDelay(1, 15),
            seed=3,
        )
        workload = uniform_workload(graph, 120, seed=3)
        result = run_workload(cluster, workload)
        assert result.consistent, f"{name} violated consistency"

    @pytest.mark.parametrize("name", sorted(SAFE_FACTORIES))
    def test_safe_baselines_survive_causal_chains(self, name):
        graph = ShareGraph.from_placement(ring_placement(5))
        cluster = Cluster(
            graph,
            replica_factory=SAFE_FACTORIES[name],
            delay_model=UniformDelay(1, 25),
            seed=5,
        )
        workload = causal_chain_workload(graph, num_chains=8, chain_length=5, seed=5)
        result = run_workload(cluster, workload, interleave_steps=2)
        assert result.consistent, f"{name} violated consistency on chains"

    def test_incident_only_consistent_on_trees(self):
        # Without loops the incident edges ARE the timestamp graph, so the
        # oblivious baseline coincides with the paper's algorithm and is safe.
        graph = ShareGraph.from_placement(tree_placement(7))
        cluster = Cluster(
            graph,
            replica_factory=incident_only_factory,
            delay_model=UniformDelay(1, 20),
            seed=6,
        )
        result = run_workload(cluster, uniform_workload(graph, 150, seed=6))
        assert result.consistent

    def test_modified_hoop_tracking_builds(self):
        graph = ShareGraph.from_placement(triangle_placement())
        replica = modified_hoop_tracking_factory(graph, 1)
        assert isinstance(replica, HoopTrackingReplica)
        assert replica.modified
