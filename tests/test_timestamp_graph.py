"""Unit tests for repro.core.timestamp_graph — Definition 5 and the Fig. 5 example."""

from __future__ import annotations

import math

import pytest

from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import (
    TimestampGraph,
    build_all_timestamp_graphs,
    metadata_summary,
    timestamp_edges,
)
from repro.sim.topologies import (
    clique_placement,
    figure5_placement,
    ring_placement,
    tree_placement,
)


class TestFigure5:
    """The exact timestamp graph of Figure 5(b)."""

    def test_replica1_contains_e43_but_not_e34(self, figure5_graph):
        edges = timestamp_edges(figure5_graph, 1)
        assert (4, 3) in edges
        assert (3, 4) not in edges

    def test_replica1_contains_e32_but_not_e23(self, figure5_graph):
        edges = timestamp_edges(figure5_graph, 1)
        assert (3, 2) in edges
        assert (2, 3) not in edges

    def test_replica1_full_edge_set(self, figure5_graph):
        assert timestamp_edges(figure5_graph, 1) == frozenset(
            {(1, 2), (2, 1), (1, 4), (4, 1), (2, 4), (4, 2), (3, 2), (4, 3)}
        )

    def test_timestamp_edges_not_necessarily_bidirectional(self, figure5_graph):
        # The paper highlights that timestamp edges are not bidirectional.
        edges = timestamp_edges(figure5_graph, 1)
        asymmetric = [(a, b) for (a, b) in edges if (b, a) not in edges]
        assert asymmetric


class TestStructuralInvariants:
    def test_incident_edges_always_tracked(self, any_small_graph):
        graph = any_small_graph
        for rid in graph.replica_ids:
            assert graph.incident_edges(rid) <= timestamp_edges(graph, rid)

    def test_edges_subset_of_share_graph(self, any_small_graph):
        graph = any_small_graph
        for rid in graph.replica_ids:
            assert timestamp_edges(graph, rid) <= graph.edges

    def test_tree_tracks_only_incident_edges(self, tree7_graph):
        for rid in tree7_graph.replica_ids:
            assert timestamp_edges(tree7_graph, rid) == tree7_graph.incident_edges(rid)
            assert len(timestamp_edges(tree7_graph, rid)) == 2 * tree7_graph.degree(rid)

    def test_cycle_tracks_all_edges(self, ring6_graph):
        for rid in ring6_graph.replica_ids:
            assert timestamp_edges(ring6_graph, rid) == ring6_graph.edges
            assert len(timestamp_edges(ring6_graph, rid)) == 2 * 6

    def test_clique_tracks_all_edges(self, clique4_graph):
        for rid in clique4_graph.replica_ids:
            assert timestamp_edges(clique4_graph, rid) == clique4_graph.edges


class TestTimestampGraphObject:
    def test_build_and_queries(self, figure5_graph):
        tg = TimestampGraph.build(figure5_graph, 1)
        assert tg.replica_id == 1
        assert tg.num_counters == 8
        assert tg.tracks((4, 3))
        assert not tg.tracks((3, 4))
        assert tg.incident_edges() == frozenset({(1, 2), (2, 1), (1, 4), (4, 1)})
        assert tg.remote_edges() == frozenset({(2, 4), (4, 2), (3, 2), (4, 3)})
        assert set(tg.vertices) == {1, 2, 3, 4}

    def test_from_edges_constructor(self, figure5_graph):
        tg = TimestampGraph.from_edges(figure5_graph, 1, [(1, 2), (2, 1)])
        assert tg.num_counters == 2
        assert tg.tracks((1, 2))

    def test_outgoing_edges_of(self, figure5_graph):
        tg = TimestampGraph.build(figure5_graph, 1)
        assert tg.outgoing_edges_of(4) == frozenset({(4, 1), (4, 2), (4, 3)})

    def test_shared_edges_with(self, figure5_graph):
        tg1 = TimestampGraph.build(figure5_graph, 1)
        tg2 = TimestampGraph.build(figure5_graph, 2)
        shared = tg1.shared_edges_with(tg2)
        assert shared <= tg1.edges and shared <= tg2.edges
        assert (1, 2) in shared

    def test_size_bits(self, figure5_graph):
        tg = TimestampGraph.build(figure5_graph, 1)
        assert tg.size_bits(15) == pytest.approx(8 * math.log2(16))
        with pytest.raises(ValueError):
            tg.size_bits(0)

    def test_describe_mentions_loop_and_incident(self, figure5_graph):
        text = TimestampGraph.build(figure5_graph, 1).describe()
        assert "(incident)" in text and "(loop)" in text

    def test_max_loop_length_restriction(self, ring6_graph):
        bounded = TimestampGraph.build(ring6_graph, 1, max_loop_length=3)
        exact = TimestampGraph.build(ring6_graph, 1)
        assert bounded.edges < exact.edges
        assert bounded.edges == ring6_graph.incident_edges(1)


class TestHelpers:
    def test_build_all_timestamp_graphs(self, figure5_graph):
        graphs = build_all_timestamp_graphs(figure5_graph)
        assert set(graphs) == {1, 2, 3, 4}
        assert graphs[1].num_counters == 8

    def test_metadata_summary(self, figure5_graph):
        graphs = build_all_timestamp_graphs(figure5_graph)
        summary = metadata_summary(graphs)
        assert summary[1] == 8
        assert list(summary) == sorted(summary)
