"""Observability over the live runtime: traces, telemetry, wire books.

The live side of the acceptance bar: an 8-replica cluster of real
processes over real TCP, with tracing and periodic TELEMETRY export on,
whose per-process trace recorders join (they share the launcher's clock
origin) into chains covering ≥99% of delivered ops.

When ``REPRO_OBS_ARTIFACTS`` names a directory, the traced run also dumps
its JSONL trace and metrics files there — the artifacts CI uploads.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.share_graph import ShareGraph
from repro.net import LiveCluster
from repro.obs import (
    assemble_spans,
    chrome_trace,
    complete_chains,
    coverage,
    registry_for_live,
    stage_breakdown,
    write_trace_jsonl,
)
from repro.sim.topologies import pairwise_clique_placement
from repro.sim.workloads import single_writer_workload


@pytest.fixture(scope="module")
def traced_live_run():
    graph = ShareGraph.from_placement(pairwise_clique_placement(8))
    # Every pairwise register lives at exactly 2 replicas, so each write
    # yields a single remote copy — the rate keeps the chain count >50.
    workload = single_writer_workload(
        graph, rate=6.0, duration=25.0, write_fraction=0.6, seed=23
    )
    with LiveCluster(graph, tracing=True, telemetry_interval=0.25) as cluster:
        result = cluster.run_open_loop(workload, time_scale=0.0005)
    assert result.check_consistency().is_causally_consistent
    return result


class TestLiveTracing:
    def test_chain_coverage_at_least_99_percent(self, traced_live_run):
        events = traced_live_run.trace_events()
        assert events
        spans = assemble_spans(events)
        complete, applied = coverage(spans)
        assert applied > 50
        assert complete / applied >= 0.99

    def test_cross_process_clocks_join(self, traced_live_run):
        """Per-process recorders share the launcher's clock origin, so a
        chain's stages — recorded in *different* OS processes — must be
        monotone after the merge."""
        chains = complete_chains(assemble_spans(traced_live_run.trace_events()))
        assert chains
        breakdown = stage_breakdown(chains)
        # issue/send/wire happen in the sender process, deliver/apply in
        # the receiver: a negative transport hop would mean the clock
        # origins diverged.
        assert breakdown["transport"].p50 >= 0.0
        assert breakdown["end-to-end"].p50 > 0.0

    def test_chrome_export_renders(self, traced_live_run, tmp_path):
        spans = assemble_spans(traced_live_run.trace_events())
        document = chrome_trace(spans)  # live times are seconds → µs
        path = tmp_path / "live_trace.json"
        path.write_text(json.dumps(document))
        loaded = json.loads(path.read_text())
        assert any(event["ph"] == "X" for event in loaded["traceEvents"])

    def test_telemetry_frames_received_and_folded(self, traced_live_run):
        telemetry = traced_live_run.telemetry
        # Every node pushed at least one sample: the periodic loop covers
        # long runs, and the REPORT_REQ handler flushes a final sample
        # ahead of its reply, so even a run shorter than one sampling
        # interval exports its end-of-run counters from all 8 nodes.
        assert len(telemetry) == 8
        assert all(frames for frames in telemetry.values())
        for frames in telemetry.values():
            for sampled_at, replica_id, samples in frames:
                assert sampled_at >= 0.0
                for name, labels, value in samples:
                    assert name.startswith("repro_node_")
                    assert isinstance(labels, tuple)
                    assert value >= 0.0

    def test_wire_books_and_registry_projection(self, traced_live_run):
        books = traced_live_run.channel_wire_stats()
        assert books
        for channel, book in books.items():
            assert book.messages > 0
            assert book.timestamp_bytes > 0
        registry = registry_for_live(traced_live_run)
        records = registry.snapshot()
        names = {record["name"] for record in records}
        assert "repro_applies_total" in names
        assert "repro_node_wire_timestamp_bytes_total" in names
        # The Prometheus rendering of a live registry is well-formed.
        text = registry.render_prometheus()
        assert "# TYPE repro_applies_total counter" in text

    def test_artifacts_dump_when_requested(self, traced_live_run, tmp_path):
        artifact_dir = os.environ.get("REPRO_OBS_ARTIFACTS") or str(tmp_path)
        os.makedirs(artifact_dir, exist_ok=True)
        trace_path = os.path.join(artifact_dir, "live_trace.jsonl")
        metrics_path = os.path.join(artifact_dir, "live_metrics.jsonl")
        written = write_trace_jsonl(traced_live_run.trace_events(), trace_path)
        assert written > 0
        registry = registry_for_live(traced_live_run)
        assert registry.write_jsonl(metrics_path) > 0
        # Both artifacts reload as JSONL.
        with open(trace_path, encoding="utf-8") as handle:
            assert all(json.loads(line) for line in handle)
        with open(metrics_path, encoding="utf-8") as handle:
            assert all(json.loads(line) for line in handle)


def test_tracing_defaults_off():
    """An untraced LiveCluster reports no trace events and no telemetry."""
    graph = ShareGraph.from_placement(pairwise_clique_placement(3))
    workload = single_writer_workload(
        graph, rate=3.0, duration=8.0, write_fraction=0.6, seed=5
    )
    with LiveCluster(graph) as cluster:
        result = cluster.run_open_loop(workload, time_scale=0.0005)
    assert result.trace_events() == []
    assert all(not frames for frames in result.telemetry.values())
