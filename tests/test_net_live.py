"""Live-runtime integration tests: real processes, real sockets, real kills.

The headline here is the crash test the fault subsystem (PR 2) earned in
simulation, replayed against the real runtime: SIGKILL a replica process
mid-run — no flush, no goodbye — restart it from its durable snapshot, and
assert the resync protocol converges the cluster back to a causally
consistent, state-agreed execution.
"""

from __future__ import annotations

import pytest

from repro.core.share_graph import ShareGraph
from repro.net import LiveCluster
from repro.net.client import OpenLoopClient
from repro.net.runtime import LiveRuntimeError
from repro.sim.topologies import pairwise_clique_placement
from repro.sim.workloads import single_writer_workload


def _graph():
    return ShareGraph.from_placement(pairwise_clique_placement(4))


def _phase(graph, seed):
    return single_writer_workload(
        graph, rate=3.0, duration=30.0, write_fraction=0.6, seed=seed
    )


class TestKillRestart:
    def test_sigkill_restart_resyncs_and_stays_consistent(self, tmp_path):
        """The crash/kill integration test (ISSUE 5 satellite).

        Three workload phases: healthy → replica 2 SIGKILLed → restarted.
        The killed replica loses every in-memory queue; recovery rides its
        durable snapshot + sent-log and the SYNC exchange on reconnect.
        """
        graph = _graph()
        with LiveCluster(graph, durable_dir=str(tmp_path)) as cluster:
            healthy = OpenLoopClient(cluster).run(
                _phase(graph, seed=1), time_scale=0.0005
            )
            assert healthy.ok and healthy.rejected == 0

            cluster.kill(2)
            assert not cluster.alive(2)
            degraded = OpenLoopClient(cluster).run(
                _phase(graph, seed=2), time_scale=0.0005
            )
            # Operations addressed to the dead replica are rejected — the
            # availability cost of the crash, as in the simulator.
            assert degraded.rejected > 0
            assert degraded.completed == degraded.submitted

            cluster.restart(2)
            assert cluster.alive(2)
            recovered = OpenLoopClient(cluster).run(
                _phase(graph, seed=3), time_scale=0.0005
            )
            assert recovered.rejected == 0

            cluster.drain(timeout=60.0)
            result = cluster.collect(
                operation_latencies=(
                    healthy.latencies + degraded.latencies + recovered.latencies
                ),
                rejected_operations=degraded.rejected,
            )

        report = result.check_consistency()
        assert report.is_causally_consistent, (
            f"safety: {report.safety_violations[:3]}, "
            f"liveness: {report.liveness_violations[:3]}"
        )
        # The restarted node recovered from its durable snapshot, and the
        # launcher-side fault accounting filled the same RunMetrics fields
        # the simulator's fault analyses consume.
        assert result.reports[2]["recovered"]
        assert result.metrics.crashes == 1
        assert result.metrics.restarts == 1
        assert result.metrics.rejected_operations == degraded.rejected
        assert len(result.metrics.downtime[2]) == 1
        down_at, up_at = result.metrics.downtime[2][0]
        assert 0 <= down_at < up_at
        availability = result.metrics.availability(
            result.wall_duration or up_at, graph.replica_ids
        )
        assert availability[2] < 1.0
        assert all(availability[rid] == 1.0 for rid in (1, 3, 4))
        # Resync converged: every register agrees across its storing
        # replicas (single-writer workload ⇒ the final state is unique).
        for register, values in result.final_state().items():
            assert len(set(values.values())) == 1, (
                f"register {register} diverged after recovery: {values}"
            )

    def test_restart_requires_durable_snapshots(self):
        graph = _graph()
        with LiveCluster(graph) as cluster:  # diskless
            cluster.kill(1)
            with pytest.raises(LiveRuntimeError):
                cluster.restart(1)

    def test_kill_twice_is_an_error(self, tmp_path):
        graph = _graph()
        with LiveCluster(graph, durable_dir=str(tmp_path)) as cluster:
            cluster.kill(3)
            with pytest.raises(LiveRuntimeError):
                cluster.kill(3)
            cluster.restart(3)
            cluster.drain(timeout=30.0)


class TestMultiTenant:
    def test_multi_tenant_kill_restart_recovers_all_tenants(self, tmp_path):
        """The scale-out crash test (ISSUE 8): SIGKILL a *node* hosting
        several replicas; the restarted process replays each tenant's
        checkpoint + WAL tail and the stream resync converges the cluster.
        """
        graph = ShareGraph.from_placement(pairwise_clique_placement(6))
        with LiveCluster(
            graph, nodes=3, durable_dir=str(tmp_path), wal_compact_bytes=4096
        ) as cluster:
            hosted = cluster.placement["n1"]
            assert len(hosted) == 2
            healthy = OpenLoopClient(cluster).run(
                _phase(graph, seed=1), time_scale=0.0005
            )
            assert healthy.ok

            # Kill by hosted replica id: the whole node goes down.
            cluster.kill(hosted[0])
            assert not cluster.alive("n1")
            assert all(not cluster.alive(rid) for rid in hosted)
            degraded = OpenLoopClient(cluster).run(
                _phase(graph, seed=2), time_scale=0.0005
            )
            assert degraded.rejected > 0

            cluster.restart("n1")
            assert all(cluster.alive(rid) for rid in hosted)
            recovered = OpenLoopClient(cluster).run(
                _phase(graph, seed=3), time_scale=0.0005
            )
            assert recovered.rejected == 0

            cluster.drain(timeout=60.0)
            result = cluster.collect(rejected_operations=degraded.rejected)

        report = result.check_consistency()
        assert report.is_causally_consistent, (
            f"safety: {report.safety_violations[:3]}, "
            f"liveness: {report.liveness_violations[:3]}"
        )
        # Every tenant of the killed node recovered from its own durable
        # pair; downtime was booked per replica.
        for rid in hosted:
            assert result.reports[rid]["recovered"]
            assert len(result.metrics.downtime[rid]) == 1
        assert result.metrics.crashes == 1 and result.metrics.restarts == 1
        # Resync converged: single-writer ⇒ unique final state.
        for register, values in result.final_state().items():
            assert len(set(values.values())) == 1

    def test_transport_footprint_scales_with_nodes_not_edges(self, tmp_path):
        """8 pairwise-clique replicas = 56 directed edges; on 2 nodes the
        transport opens at most 2 ordered host pairs' worth of streams."""
        graph = ShareGraph.from_placement(pairwise_clique_placement(8))
        workload = single_writer_workload(
            graph, rate=4.0, duration=20.0, write_fraction=0.6, seed=6
        )
        with LiveCluster(graph, nodes=2) as cluster:
            OpenLoopClient(cluster).run(workload, time_scale=0.0005)
            cluster.drain(timeout=30.0)
            result = cluster.collect()
        assert len(result.reports) == 8
        hosts = len(result.node_reports)
        assert hosts == 2
        outbound = sum(
            r["transport"]["peer_streams"] for r in result.node_reports.values()
        )
        assert 0 < outbound <= hosts * (hosts - 1)
        assert outbound < len(graph.edges)
        assert result.check_consistency().is_causally_consistent
        # The per-tenant ledger holds for co-hosted replicas too: the
        # short-circuit path books intra-node copies through the same
        # counters the wire path uses.
        for report in result.reports.values():
            counters = report["counters"]
            assert counters["delivered"] == (
                counters["received"] - counters["duplicates"]
            )

    def test_explicit_placement_and_bad_placement_rejected(self, tmp_path):
        from repro.core.errors import ConfigurationError

        graph = _graph()
        placement = {"left": (1, 2), "right": (3, 4)}
        with LiveCluster(graph, placement=placement) as cluster:
            assert cluster.placement == {"left": (1, 2), "right": (3, 4)}
            outcome = OpenLoopClient(cluster).run(
                _phase(graph, seed=5), time_scale=0.0005
            )
            cluster.drain(timeout=30.0)
            result = cluster.collect()
        assert outcome.ok
        assert result.check_consistency().is_causally_consistent
        with pytest.raises(ConfigurationError):
            LiveCluster(graph, placement={"only": (1, 2)})  # not a partition
        with pytest.raises(ConfigurationError):
            LiveCluster(graph, placement={"a": (1, 2, 3), "b": (3, 4)})


class TestControlLinkShutdown:
    """ISSUE 8 satellite: close() joins the reader and keeps late frames."""

    def _serve_once(self, behaviour):
        """One-shot fake node: accept a connection, run ``behaviour``."""
        import socket
        import threading

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)

        def run():
            conn, _ = server.accept()
            try:
                behaviour(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
                server.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return server.getsockname(), thread

    def test_close_surfaces_report_racing_the_shutdown(self):
        """A REPORT flushed by the node as it exits must land in the
        report queue even when close() is already underway — joining the
        reader guarantees every frame sent before EOF is dispatched."""
        import pickle as pickle_mod
        import time as time_mod

        from repro.net import frames
        from repro.net.framing import encode_frame
        from repro.net.runtime import ControlLink

        def behaviour(conn):
            conn.recv(65536)  # the CONTROL_HELLO
            time_mod.sleep(0.2)  # close() is already joining by now
            conn.sendall(encode_frame(
                frames.REPORT, pickle_mod.dumps({"late": True})
            ))
            conn.sendall(encode_frame(99, b"future-vocabulary"))

        address, thread = self._serve_once(behaviour)
        link = ControlLink(address)
        link.close(timeout=5.0)
        thread.join(timeout=5.0)
        assert not link._reader.is_alive()
        assert pickle_mod.loads(link._reports.get_nowait()) == {"late": True}
        # Unknown kinds are surfaced, not silently dropped.
        assert link.unclaimed == [(99, b"future-vocabulary")]

    def test_close_bounded_when_node_never_hangs_up(self):
        """A wedged node that neither answers nor closes cannot hang
        stop(): close() forces the socket shut after its timeout."""
        import threading
        import time as time_mod

        from repro.net.runtime import ControlLink

        release = threading.Event()

        def behaviour(conn):
            release.wait(10.0)  # hold the connection open, send nothing

        address, thread = self._serve_once(behaviour)
        link = ControlLink(address)
        started = time_mod.monotonic()
        link.close(timeout=0.3)
        elapsed = time_mod.monotonic() - started
        assert elapsed < 5.0
        assert not link._reader.is_alive()
        release.set()
        thread.join(timeout=5.0)


class TestLiveBasics:
    def test_reads_observe_local_writes(self, tmp_path):
        """A read at the writer observes its own write (session order)."""
        graph = _graph()
        workload = single_writer_workload(
            graph, rate=4.0, duration=30.0, write_fraction=0.5, seed=9
        )
        with LiveCluster(graph, durable_dir=str(tmp_path)) as cluster:
            client = OpenLoopClient(cluster)
            outcome = client.run(workload, time_scale=0.0005)
            cluster.drain(timeout=30.0)
            result = cluster.collect(operation_latencies=outcome.latencies)
        assert outcome.ok
        # Cross-check the client's read results against the final state:
        # the last read of each register at its single writer saw either
        # the final value or an earlier one from the same totally-ordered
        # write sequence — never a value outside the written set.
        written = {
            arrival.operation.register: set()
            for arrival in workload.arrivals
            if arrival.operation.kind == "write"
        }
        for arrival in workload.arrivals:
            operation = arrival.operation
            if operation.kind == "write":
                written[operation.register].add(operation.value)
        for _, register, value in outcome.read_results:
            if value is not None:
                assert value in written.get(register, set())
        report = result.check_consistency()
        assert report.is_causally_consistent

    def test_duplicate_suppression_counts_are_reported(self, tmp_path):
        """Reports expose the reliability layer's bookkeeping."""
        graph = _graph()
        workload = single_writer_workload(
            graph, rate=4.0, duration=20.0, seed=4
        )
        with LiveCluster(graph, durable_dir=str(tmp_path)) as cluster:
            outcome = OpenLoopClient(cluster).run(workload, time_scale=0.0005)
            cluster.drain(timeout=30.0)
            result = cluster.collect(operation_latencies=outcome.latencies)
        for report in result.reports.values():
            counters = report["counters"]
            # First receipts + suppressed duplicates account for every
            # message read off the wire, and the replica's own duplicate
            # suppression never sees more copies than the wire produced —
            # exactly-once at the protocol layer, whatever the
            # retransmission timers did.
            assert counters["delivered"] == counters["received"] - counters["duplicates"]
            assert report["duplicates_ignored"] <= counters["duplicates"]
