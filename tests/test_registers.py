"""Unit tests for repro.core.registers."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    ConfigurationError,
    UnknownRegisterError,
    UnknownReplicaError,
)
from repro.core.registers import RegisterPlacement


def make_placement() -> RegisterPlacement:
    return RegisterPlacement.from_dict({1: {"x"}, 2: {"x", "y"}, 3: {"y", "z"}, 4: {"z"}})


class TestConstruction:
    def test_from_dict_normalizes_to_frozensets(self):
        placement = RegisterPlacement.from_dict({1: ["x", "y"], 2: ("y",)})
        assert placement.registers_at(1) == frozenset({"x", "y"})
        assert placement.registers_at(2) == frozenset({"y"})

    def test_empty_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            RegisterPlacement.from_dict({})

    def test_non_integer_replica_id_rejected(self):
        with pytest.raises(ConfigurationError):
            RegisterPlacement.from_dict({"a": {"x"}})

    def test_full_replication_constructor(self):
        placement = RegisterPlacement.full_replication([1, 2, 3], {"x", "y"})
        assert placement.is_fully_replicated()
        for rid in (1, 2, 3):
            assert placement.registers_at(rid) == frozenset({"x", "y"})

    def test_register_names_coerced_to_strings(self):
        placement = RegisterPlacement.from_dict({1: {1, 2}})
        assert placement.registers_at(1) == frozenset({"1", "2"})


class TestQueries:
    def test_replica_ids_sorted(self):
        placement = RegisterPlacement.from_dict({3: {"a"}, 1: {"a"}, 2: {"a"}})
        assert placement.replica_ids == (1, 2, 3)

    def test_num_replicas(self):
        assert make_placement().num_replicas == 4

    def test_registers_union(self):
        assert make_placement().registers == frozenset({"x", "y", "z"})

    def test_registers_at_unknown_replica(self):
        with pytest.raises(UnknownReplicaError):
            make_placement().registers_at(99)

    def test_shared_registers(self):
        placement = make_placement()
        assert placement.shared_registers(2, 3) == frozenset({"y"})
        assert placement.shared_registers(1, 4) == frozenset()

    def test_stores_register(self):
        placement = make_placement()
        assert placement.stores_register(2, "x")
        assert not placement.stores_register(1, "z")

    def test_replicas_storing(self):
        assert make_placement().replicas_storing("y") == (2, 3)

    def test_replicas_storing_unknown_register(self):
        with pytest.raises(UnknownRegisterError):
            make_placement().replicas_storing("nope")

    def test_is_fully_replicated_false_for_partial(self):
        assert not make_placement().is_fully_replicated()

    def test_replication_factor(self):
        assert make_placement().replication_factor("x") == 2

    def test_storage_cost(self):
        placement = make_placement()
        assert placement.storage_cost(2) == 2
        assert placement.total_storage_cost() == 6

    def test_contains_and_len_and_iter(self):
        placement = make_placement()
        assert 1 in placement
        assert 99 not in placement
        assert len(placement) == 4
        assert list(placement) == [1, 2, 3, 4]

    def test_describe_mentions_every_replica(self):
        text = make_placement().describe()
        for rid in (1, 2, 3, 4):
            assert f"replica {rid}" in text


class TestDerivation:
    def test_with_additional_registers(self):
        placement = make_placement()
        augmented = placement.with_additional_registers({1: {"z"}})
        assert augmented.stores_register(1, "z")
        # The original placement is untouched (immutability).
        assert not placement.stores_register(1, "z")

    def test_with_additional_registers_unknown_replica(self):
        with pytest.raises(UnknownReplicaError):
            make_placement().with_additional_registers({9: {"q"}})

    def test_restricted_to(self):
        restricted = make_placement().restricted_to([2, 3])
        assert restricted.replica_ids == (2, 3)
        assert restricted.registers == frozenset({"x", "y", "z"})

    def test_restricted_to_unknown_replica(self):
        with pytest.raises(UnknownReplicaError):
            make_placement().restricted_to([1, 9])
