"""The batch engine's equivalence contract, property-tested.

``apply_batch`` (one ``receive_many`` + one drain of the pending index) must
be observationally identical to the per-message ``receive`` + ``apply_ready``
loop it replaces: same applied updates in the same order, same store, same
timestamp, same pending buffer, same event trace — and, through the host
layer, the same ``RunMetrics``.  The engine shares the drain loop between
both paths, so these tests are the executable statement of that guarantee
on randomized workloads, for both timestamp families and both deployment
architectures.

Run with ``REPRO_PURE_PYTHON=1`` to pin the pure-Python kernels; the CI
compiled leg runs the same file against the mypyc core.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.vector_clock_full import FullReplicationReplica
from repro.clientserver import ClientServerCluster
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster
from repro.sim.delays import UniformDelay
from repro.sim.engine import BatchingConfig, SimulationHost
from repro.sim.topologies import clique_placement
from repro.sim.workloads import run_workload, uniform_workload

# ----------------------------------------------------------------------
# Replica-level equivalence: apply_batch vs receive + apply_ready
# ----------------------------------------------------------------------


def _build_backlog(family: str, writer_count: int, script, rng_pick):
    """Issue a causally entangled workload; return (receiver, messages).

    ``script`` drives the interleaving: a sequence of (writer index,
    cross-deliver flags) steps.  After each write, the flagged other
    writers immediately receive and apply it, so later writes carry real
    cross-writer dependencies — the regime where delivery order and the
    pending index actually matter.
    """
    graph = ShareGraph.from_placement(clique_placement(writer_count + 1))
    ids = sorted(graph.replica_ids)
    receiver_id, writer_ids = ids[0], ids[1:]
    if family == "vector":
        make = lambda rid: FullReplicationReplica(graph, rid)  # noqa: E731
    else:
        make = lambda rid: EdgeIndexedReplica(graph, rid)  # noqa: E731
    writers = {rid: make(rid) for rid in writer_ids}
    receiver = make(receiver_id)
    to_receiver = []
    for step, (writer_index, deliver_flags) in enumerate(script):
        writer_id = writer_ids[writer_index % len(writer_ids)]
        messages = writers[writer_id].write("g", f"{writer_id}:{step}")
        for message in messages:
            if message.destination == receiver_id:
                to_receiver.append(message)
            elif deliver_flags & (1 << (message.destination % 8)):
                peer = writers[message.destination]
                peer.receive(message)
                peer.apply_ready()
    order = rng_pick(to_receiver)
    return receiver, order


def _state(replica):
    return (
        [u.uid for u in replica.applied],
        dict(replica.store),
        replica.pending_count(),
        replica.metadata_size(),
        list(replica.events),
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data(), family=st.sampled_from(["vector", "edge"]))
def test_apply_batch_equals_per_message_path(data, family):
    """``apply_batch(chunk)`` ≡ ``receive`` of each message + one ``apply_ready``.

    That is the contract the simulator and the live node rely on: a batch
    delivery buffers every message, then drains the pending index once.
    The property exercises it on random chunk partitions of a random
    permutation of a causally entangled backlog — chunk size 1 covers the
    singleton ``receive``/``apply_ready`` delivery path — and demands the
    *exact* apply order, not just a convergent final state.
    """
    writer_count = data.draw(st.integers(2, 4), label="writers")
    script = data.draw(
        st.lists(
            st.tuples(st.integers(0, writer_count - 1), st.integers(0, 255)),
            min_size=1,
            max_size=14,
        ),
        label="script",
    )

    def rng_pick(messages):
        return data.draw(st.permutations(messages), label="delivery order")

    receiver, stream = _build_backlog(family, writer_count, script, rng_pick)
    per_message = copy.deepcopy(receiver)
    batched = copy.deepcopy(receiver)

    chunks = []
    remaining = list(stream)
    while remaining:
        size = data.draw(st.integers(1, len(remaining)), label="chunk size")
        chunks.append(remaining[:size])
        remaining = remaining[size:]

    applied_reference = []
    applied_batched = []
    for chunk in chunks:
        for message in chunk:
            per_message.receive(message)
        applied_reference.extend(per_message.apply_ready())
        applied_batched.extend(batched.apply_batch(chunk))
        assert _state(per_message) == _state(batched)

    assert [u.uid for u in applied_reference] == [
        u.uid for u in applied_batched
    ]


def test_apply_batch_accepts_message_batch_envelope():
    """apply_batch takes a MessageBatch as well as a plain sequence."""
    from repro.wire.batch import MessageBatch

    graph = ShareGraph.from_placement(clique_placement(3))
    ids = sorted(graph.replica_ids)
    writer = FullReplicationReplica(graph, ids[1])
    receiver = FullReplicationReplica(graph, ids[0])
    messages = tuple(
        m
        for i in range(3)
        for m in writer.write("g", i)
        if m.destination == ids[0]
    )
    batch = MessageBatch(
        sender=ids[1], destination=ids[0], seq=0, messages=messages
    )
    applied = receiver.apply_batch(batch)
    assert [u.uid for u in applied] == [m.update.uid for m in messages]
    assert receiver.pending_count() == 0


# ----------------------------------------------------------------------
# Host-level equivalence: RunMetrics cannot tell the two paths apart
# ----------------------------------------------------------------------


def _per_message_deliver_batch(self, batch):
    """The pre-vectorization reference: per-message receive, one drain."""
    accepted = [m for m in batch.messages if self._accepts_epoch(m)]
    if not accepted:
        return
    replica = self._replica(batch.destination)
    for message in accepted:
        replica.receive(message)
    self._apply_ready(replica)
    self._after_delivery(replica)


def _metrics_fingerprint(cluster):
    metrics = cluster.metrics
    return (
        metrics.applies,
        metrics.writes,
        metrics.reads,
        list(metrics.apply_times),
        list(metrics.apply_latencies),
        dict(metrics.max_pending),
        {rid: list(events) for rid, events in cluster.events_by_replica().items()},
    )


@pytest.mark.parametrize("architecture", ["peer_to_peer", "client_server"])
@pytest.mark.parametrize("seed", [3, 11])
def test_run_metrics_identical_across_delivery_paths(
    architecture, seed, monkeypatch
):
    """Batched vs per-message delivery: byte-identical RunMetrics and traces."""
    graph = ShareGraph.from_placement(clique_placement(5))
    workload = uniform_workload(graph, 120, seed=seed)
    batching = BatchingConfig(max_messages=8, max_delay=4.0)

    def run(patched: bool):
        if patched:
            monkeypatch.setattr(
                SimulationHost, "_deliver_batch", _per_message_deliver_batch
            )
        else:
            monkeypatch.undo()
        if architecture == "peer_to_peer":
            cluster = Cluster(
                graph,
                delay_model=UniformDelay(1, 10),
                seed=seed,
                batching=batching,
            )
        else:
            cluster = ClientServerCluster.with_colocated_clients(
                graph,
                delay_model=UniformDelay(1, 10),
                seed=seed,
                batching=batching,
            )
        result = run_workload(cluster, workload)
        assert result.consistent
        return cluster

    batched = run(patched=False)
    reference = run(patched=True)
    assert _metrics_fingerprint(batched) == _metrics_fingerprint(reference)
