"""Unit tests for repro.core.hoops — Hélary–Milani hoops and the paper's correction."""

from __future__ import annotations

import pytest

from repro.core.hoops import (
    compare_with_theorem8,
    hoop_tracked_edges,
    hoop_tracked_registers,
    is_minimal_hoop,
    iter_hoops,
    minimal_hoops,
    must_transmit,
)
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import timestamp_edges
from repro.sim.topologies import (
    COUNTEREXAMPLE_IDS,
    counterexample1_placement,
    counterexample2_placement,
    figure3_placement,
    triangle_placement,
)


class TestHoopEnumeration:
    def test_triangle_hoop_for_each_register(self, triangle_graph):
        # x is stored at 1 and 2; the path 1 - 3 - 2 is an x-hoop.
        hoops = list(iter_hoops(triangle_graph, "x"))
        assert len(hoops) == 1
        hoop = hoops[0]
        assert hoop.endpoints == (1, 2)
        assert hoop.internal == (3,)
        assert hoop.register == "x"
        assert len(hoop) == 3
        assert hoop.edges == ((1, 3), (3, 2))
        assert "x-hoop" in str(hoop)

    def test_path_topology_has_no_hoops(self, figure3_graph):
        for register in figure3_graph.placement.registers:
            assert list(iter_hoops(figure3_graph, register)) == []

    def test_internal_vertices_never_store_the_register(self, counterexample1_graph):
        for hoop in iter_hoops(counterexample1_graph, "x"):
            for internal in hoop.internal:
                assert not counterexample1_graph.placement.stores_register(internal, "x")

    def test_max_length_cutoff(self, counterexample1_graph):
        # The only x-hoop is the full 7-vertex ring; a length cutoff of 4 hides it.
        assert list(iter_hoops(counterexample1_graph, "x", max_length=4)) == []
        assert list(iter_hoops(counterexample1_graph, "x", max_length=7))


class TestCounterexample1:
    """Original minimal-hoop definition demands tracking Theorem 8 does not (Fig. 6/8a)."""

    def test_ring_through_i_is_a_minimal_x_hoop_under_original_definition(
        self, counterexample1_graph
    ):
        ids = COUNTEREXAMPLE_IDS
        hoops = minimal_hoops(counterexample1_graph, "x", modified=False)
        assert hoops, "the graph must contain minimal x-hoops"
        through_i = [h for h in hoops if ids["i"] in h.path]
        assert through_i, "the 7-replica ring through i must be a minimal x-hoop"
        for hoop in through_i:
            assert set(hoop.endpoints) == {ids["j"], ids["k"]}

    def test_original_criterion_requires_i_to_track_x(self, counterexample1_graph, ce_ids):
        assert must_transmit(counterexample1_graph, ce_ids["i"], "x", modified=False)

    def test_theorem8_does_not_require_i_to_track_x_edges(self, counterexample1_graph, ce_ids):
        edges = timestamp_edges(counterexample1_graph, ce_ids["i"])
        j, k = ce_ids["j"], ce_ids["k"]
        assert (j, k) not in edges
        assert (k, j) not in edges

    def test_comparison_shows_hoops_over_demand(self, counterexample1_graph, ce_ids):
        comparison = compare_with_theorem8(counterexample1_graph, ce_ids["i"], modified=False)
        j, k = ce_ids["j"], ce_ids["k"]
        assert {(j, k), (k, j)} <= comparison.only_hoop
        assert comparison.only_theorem8 == frozenset()


class TestCounterexample2:
    """Modified minimal-hoop definition waives tracking Theorem 8 requires (Fig. 8b)."""

    def test_no_minimal_modified_hoop_contains_i(self, counterexample2_graph):
        # Under the modified definition, the ring through i is not minimal
        # (its only available label y is stored by three hoop members), so no
        # minimal x-hoop contains replica i.
        ids = COUNTEREXAMPLE_IDS
        hoops = minimal_hoops(counterexample2_graph, "x", modified=True)
        assert all(ids["i"] not in h.path for h in hoops)

    def test_ring_through_i_is_a_minimal_x_hoop_under_original_definition(
        self, counterexample2_graph
    ):
        ids = COUNTEREXAMPLE_IDS
        hoops = minimal_hoops(counterexample2_graph, "x", modified=False)
        assert any(ids["i"] in h.path for h in hoops)

    def test_modified_criterion_waives_tracking_at_i(self, counterexample2_graph, ce_ids):
        assert not must_transmit(counterexample2_graph, ce_ids["i"], "x", modified=True)

    def test_theorem8_requires_tracking_e_kj_at_i(self, counterexample2_graph, ce_ids):
        edges = timestamp_edges(counterexample2_graph, ce_ids["i"])
        assert (ce_ids["k"], ce_ids["j"]) in edges

    def test_comparison_shows_modified_hoops_under_demand(self, counterexample2_graph, ce_ids):
        comparison = compare_with_theorem8(counterexample2_graph, ce_ids["i"], modified=True)
        assert (ce_ids["k"], ce_ids["j"]) in comparison.only_theorem8


class TestTrackingSets:
    def test_stored_registers_always_tracked(self, triangle_graph):
        for rid in triangle_graph.replica_ids:
            tracked = hoop_tracked_registers(triangle_graph, rid)
            assert triangle_graph.registers_at(rid) <= tracked

    def test_hoop_edges_include_incident_edges_labels(self, triangle_graph):
        for rid in triangle_graph.replica_ids:
            edges = hoop_tracked_edges(triangle_graph, rid)
            assert triangle_graph.incident_edges(rid) <= edges

    def test_minimality_accepts_and_rejects(self, counterexample2_graph):
        ids = COUNTEREXAMPLE_IDS
        hoops = [
            h for h in iter_hoops(counterexample2_graph, "x") if ids["i"] in h.path
        ]
        assert hoops
        for hoop in hoops:
            # The ring through i is minimal under the original definition but
            # not under the modified one — exactly the paper's point.
            assert is_minimal_hoop(counterexample2_graph, hoop, modified=False)
            assert not is_minimal_hoop(counterexample2_graph, hoop, modified=True)
