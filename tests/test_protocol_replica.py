"""Unit tests for repro.core.protocol and repro.core.replica."""

from __future__ import annotations

import pytest

from repro.core.errors import RegisterNotStoredError
from repro.core.protocol import EventKind, Update, UpdateMessage
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.sim.topologies import figure5_placement, triangle_placement


@pytest.fixture
def tri_graph():
    return ShareGraph.from_placement(triangle_placement())


def make_replicas(graph):
    return {rid: EdgeIndexedReplica(graph, rid) for rid in graph.replica_ids}


class TestUpdateAndMessage:
    def test_update_uid(self):
        u = Update(issuer=3, seq=7, register="x", value=1)
        assert u.uid == (3, 7)
        assert "x" in str(u)

    def test_update_message_str(self):
        u = Update(1, 1, "x", "v")
        msg = UpdateMessage(u, sender=1, destination=2, metadata=None, metadata_size=4)
        assert "1->2" in str(msg)
        meta_only = UpdateMessage(u, 1, 2, None, 4, payload=False)
        assert str(meta_only).startswith("meta")


class TestLocalOperations:
    def test_read_initially_none(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        assert replica.read("x") is None

    def test_read_unknown_register_raises(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        with pytest.raises(RegisterNotStoredError):
            replica.read("y")  # y is not stored at replica 1

    def test_write_unknown_register_raises(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        with pytest.raises(RegisterNotStoredError):
            replica.write("y", 1)

    def test_write_updates_store_and_returns_messages(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        messages = replica.write("x", 42)
        assert replica.read("x") == 42
        # x is shared with replica 2 only.
        assert [m.destination for m in messages] == [2]
        assert messages[0].sender == 1
        assert messages[0].update.register == "x"
        assert messages[0].payload

    def test_write_records_issue_event(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        replica.write("x", 1)
        kinds = [e.kind for e in replica.events]
        assert kinds == [EventKind.ISSUE]
        assert replica.events[0].local_index == 0

    def test_sequence_numbers_increase(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        u1 = replica.write("x", 1)[0].update
        u2 = replica.write("z", 2)[0].update
        assert u1.seq == 1 and u2.seq == 2

    def test_advance_increments_only_sharers(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        replica.write("x", 1)  # shared with 2
        assert replica.timestamp[(1, 2)] == 1
        assert replica.timestamp[(1, 3)] == 0
        replica.write("z", 1)  # shared with 3
        assert replica.timestamp[(1, 3)] == 1


class TestRemoteApplication:
    def test_fifo_updates_apply_in_order(self, tri_graph):
        replicas = make_replicas(tri_graph)
        m1 = replicas[1].write("x", "first")[0]
        m2 = replicas[1].write("x", "second")[0]
        # Deliver out of order: the second write arrives first.
        replicas[2].receive(m2)
        assert replicas[2].apply_ready() == []
        assert replicas[2].pending_count() == 1
        replicas[2].receive(m1)
        applied = replicas[2].apply_ready()
        assert [u.value for u in applied] == ["first", "second"]
        assert replicas[2].read("x") == "second"

    def test_causal_chain_across_three_replicas(self, tri_graph):
        replicas = make_replicas(tri_graph)
        # 1 writes z (shared with 3), then x (shared with 2).
        mz = replicas[1].write("z", "z1")[0]
        mx = replicas[1].write("x", "x1")[0]
        replicas[2].receive(mx)
        replicas[2].apply_ready()
        # 2 writes y (shared with 3); causally after both of 1's writes.
        my = replicas[2].write("y", "y1")[0]
        # Replica 3 receives y before z: it must wait.
        replicas[3].receive(my)
        assert replicas[3].apply_ready() == []
        replicas[3].receive(mz)
        applied = replicas[3].apply_ready()
        assert [u.register for u in applied] == ["z", "y"]

    def test_has_applied_tracking(self, tri_graph):
        replicas = make_replicas(tri_graph)
        msg = replicas[1].write("x", 1)[0]
        assert replicas[1].has_applied(msg.update.uid)
        assert not replicas[2].has_applied(msg.update.uid)
        replicas[2].receive(msg)
        replicas[2].apply_ready()
        assert replicas[2].has_applied(msg.update.uid)

    def test_apply_records_event_with_register(self, tri_graph):
        replicas = make_replicas(tri_graph)
        msg = replicas[1].write("x", 1)[0]
        replicas[2].receive(msg)
        replicas[2].apply_ready()
        apply_events = [e for e in replicas[2].events if e.kind is EventKind.APPLY]
        assert len(apply_events) == 1
        assert apply_events[0].register == "x"

    def test_metadata_size_constant_for_edge_indexed(self, tri_graph):
        replica = EdgeIndexedReplica(tri_graph, 1)
        before = replica.metadata_size()
        replica.write("x", 1)
        assert replica.metadata_size() == before == 6

    def test_concurrent_updates_from_different_senders_apply(self, tri_graph):
        replicas = make_replicas(tri_graph)
        m_from_1 = replicas[1].write("z", "a")[0]   # 1 -> 3
        m_from_2 = replicas[2].write("y", "b")[0]   # 2 -> 3
        replicas[3].receive(m_from_2)
        replicas[3].receive(m_from_1)
        applied = replicas[3].apply_ready()
        assert len(applied) == 2
        assert replicas[3].read("z") == "a" and replicas[3].read("y") == "b"

    def test_figure5_loop_dependency_respected(self):
        graph = ShareGraph.from_placement(figure5_placement())
        replicas = make_replicas(graph)
        # u0: 4 writes z (to 3); u1: 4 writes w (to 1).
        u0_msgs = {m.destination: m for m in replicas[4].write("z", "z0")}
        u1_msgs = {m.destination: m for m in replicas[4].write("w", "w1")}
        replicas[1].receive(u1_msgs[1])
        replicas[1].apply_ready()
        # u'0: 1 writes y (to 2 and 4).
        y_msgs = {m.destination: m for m in replicas[1].write("y", "y1")}
        replicas[2].receive(y_msgs[2])
        replicas[2].apply_ready()
        # u'1: 2 writes x (to 3).
        x_msgs = {m.destination: m for m in replicas[2].write("x", "x1")}
        # Replica 3 must not apply x before z (z happened-before x via the chain).
        replicas[3].receive(x_msgs[3])
        assert replicas[3].apply_ready() == []
        replicas[3].receive(u0_msgs[3])
        applied = replicas[3].apply_ready()
        assert [u.register for u in applied] == ["z", "x"]
