"""Property-based tests for the adaptive reconfiguration controller.

The three contracts that make the sense → plan → act loop safe to leave
attached (hypothesis over random specs, placements and traffic mixes):

* **feasibility** — every diff the planner proposes compiles through the
  reconfiguration action algebra into a placement that re-validates
  against the original spec, with the share graph connected at every
  intermediate epoch;
* **determinism** — the whole loop is deterministic per seed: two runs
  of the same drifting workload produce identical decisions, epochs and
  final placements;
* **hysteresis** — on a steady workload the controller never acts at
  all: zero plans, zero reconfigurations, zero decisions.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adapt import (
    AdaptiveController,
    ControllerConfig,
    Hysteresis,
    Planner,
    SignalWindow,
)
from repro.analysis.experiments import _home_map, drifting_writer_groups
from repro.core.errors import ConfigurationError
from repro.core.share_graph import ShareGraph
from repro.placement import PlacementSpec, placement_policies
from repro.sim.cluster import Cluster, edge_indexed_factory
from repro.sim.reconfig import apply_action
from repro.sim.workloads import (
    drifting_hotspot_workload,
    poisson_workload,
    run_open_loop,
)
from repro.topo import Topology, geant_like

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def topologies(draw, max_nodes: int = 8):
    """Random connected topologies: a random tree plus extra edges."""
    num_nodes = draw(st.integers(3, max_nodes))
    num_regions = draw(st.integers(1, 3))
    names = [f"s{i}" for i in range(num_nodes)]
    lines = [
        f"node {name} reg{i % num_regions}" for i, name in enumerate(names)
    ]
    seen = set()
    for i in range(1, num_nodes):
        parent = draw(st.integers(0, i - 1))
        latency = draw(st.floats(0.5, 50.0, allow_nan=False))
        seen.add((parent, i))
        lines.append(f"{names[parent]} {names[i]} {latency:.3f}")
    return Topology.parse("\n".join(lines), name=f"random-{num_nodes}")


@st.composite
def placements(draw):
    """A placed spec: random topology, policy and seed."""
    topology = draw(topologies())
    num_replicas = draw(st.integers(3, topology.num_nodes))
    num_registers = draw(st.integers(2, 8))
    replication_factor = draw(st.integers(1, min(2, num_replicas)))
    minimum = -(-(num_registers * replication_factor + num_replicas - 1)
                // num_replicas)
    capacity = draw(st.one_of(
        st.none(), st.integers(minimum + 1, minimum + 6)
    ))
    spec = PlacementSpec.make(
        topology,
        num_replicas=num_replicas,
        num_registers=num_registers,
        replication_factor=replication_factor,
        capacity=capacity,
    )
    policy = draw(st.sampled_from(sorted(placement_policies())))
    seed = draw(st.integers(0, 2**16))
    return placement_policies()[policy].place(spec, seed=seed)


@st.composite
def traffic(draw, result):
    """A sensed write mix over one placement: counts and modal writers."""
    placement = result.placement
    registers = sorted(placement.registers)
    hot = draw(st.lists(
        st.sampled_from(registers), min_size=1, max_size=len(registers),
        unique=True,
    ))
    writes_by_register = {}
    writer_of = {}
    writes_by_replica = {}
    for register in hot:
        count = draw(st.integers(1, 40))
        writer = draw(
            st.sampled_from(sorted(placement.replicas_storing(register)))
        )
        writes_by_register[register] = count
        writer_of[register] = writer
        writes_by_replica[writer] = writes_by_replica.get(writer, 0) + count
    return writes_by_register, writes_by_replica, writer_of


# ----------------------------------------------------------------------
# Signal primitives
# ----------------------------------------------------------------------

class TestSignalPrimitives:
    def test_window_is_capacity_bounded(self):
        window = SignalWindow(3)
        for i in range(10):
            window.append(i)
        assert list(window) == [7, 8, 9]
        assert window.full

    def test_merge_counts_sums_projections(self):
        window = SignalWindow(2)
        window.append({"a": 1, "b": 2})
        window.append({"a": 3})
        assert window.merge_counts(lambda s: s) == {"a": 4, "b": 2}

    def test_hysteresis_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            Hysteresis(0.3, 0.5)
        with pytest.raises(ConfigurationError):
            Hysteresis(0.5, 0.3, arm=0)

    @COMMON
    @given(
        rise=st.floats(0.3, 0.9),
        gap=st.floats(0.05, 0.2),
        arm=st.integers(1, 4),
        values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30),
    )
    def test_hysteresis_never_arms_without_consecutive_rises(
        self, rise, gap, arm, values
    ):
        """Active requires ``arm`` consecutive samples at/above ``rise``."""
        hysteresis = Hysteresis(rise, rise - gap, arm=arm)
        streak = 0
        for value in values:
            active = hysteresis.update(value)
            if value >= rise:
                streak += 1
            elif not active:
                streak = 0
            if active and streak < arm:
                pytest.fail(
                    f"armed after only {streak} consecutive rises "
                    f"(arm={arm}, value={value}, rise={rise})"
                )

    def test_hysteresis_dead_band_resets_streak(self):
        hysteresis = Hysteresis(0.5, 0.2, arm=2)
        assert not hysteresis.update(0.6)
        assert not hysteresis.update(0.3)  # dead band: streak resets
        assert not hysteresis.update(0.6)
        assert hysteresis.update(0.6)
        assert hysteresis.update(0.3)      # dead band: stays active
        assert not hysteresis.update(0.1)  # fall threshold: deactivates


# ----------------------------------------------------------------------
# Planner feasibility
# ----------------------------------------------------------------------

class TestPlannerFeasibility:
    @COMMON
    @given(data=st.data())
    def test_every_diff_compiles_to_a_feasible_placement(self, data):
        """Proposed diffs re-validate against the spec, connected throughout."""
        result = data.draw(placements())
        writes_by_register, writes_by_replica, writer_of = data.draw(
            traffic(result)
        )
        planner = Planner(result, max_moves=3, margin=0.0, min_writes=1)
        diff = planner.propose(
            result.placement, writes_by_register, writes_by_replica, writer_of
        )
        if diff is None:
            return
        assert 1 <= len(diff.moves) <= 3
        assert diff.predicted_after < diff.predicted_before

        # Replaying the compiled actions from the starting placement must
        # reach exactly the proposed placement, connected at every epoch.
        working = result.placement
        for move in diff.moves:
            for action in move.actions(0.0, 1.0):
                working = apply_action(working, action)
                assert ShareGraph.from_placement(working).is_connected()
        assert working == diff.placement

        # The final placement re-validates against the original spec.
        validated = diff.validated
        assert validated is not None
        assert validated.spec is result.spec
        for register in result.spec.registers:
            owners = working.replicas_storing(register)
            assert len(owners) >= result.spec.replication_factor
        if result.spec.capacity is not None:
            for rid in result.spec.replica_ids:
                assert len(working.registers_at(rid)) <= result.spec.capacity

    @COMMON
    @given(data=st.data())
    def test_pinned_copies_never_move(self, data):
        result = data.draw(placements())
        writes_by_register, writes_by_replica, writer_of = data.draw(
            traffic(result)
        )
        pinned = {
            register: min(result.placement.replicas_storing(register))
            for register in sorted(result.placement.registers)
        }
        planner = Planner(
            result, pinned=pinned, max_moves=3, margin=0.0, min_writes=1
        )
        diff = planner.propose(
            result.placement, writes_by_register, writes_by_replica, writer_of
        )
        if diff is None:
            return
        for move in diff.moves:
            assert pinned[move.register] != move.source
        for register, rid in pinned.items():
            assert diff.placement.stores_register(rid, register)


# ----------------------------------------------------------------------
# The closed loop
# ----------------------------------------------------------------------

def _adaptive_run(seed: int):
    """One small drifting-hotspot run with the controller attached."""
    spec = PlacementSpec.make(
        geant_like(), num_replicas=8, num_registers=12,
        replication_factor=2, capacity=6,
    )
    result = placement_policies()["latency-greedy"].place(spec, seed=seed)
    home = _home_map(result)
    workload = drifting_hotspot_workload(
        home, drifting_writer_groups(result), rate=2.0, duration=120.0,
        rotations=4, seed=seed,
    )
    host = Cluster(
        result.share_graph,
        replica_factory=edge_indexed_factory,
        delay_model=result.delay_model(jitter=0.05),
        seed=seed,
        wire_accounting=True,
    )
    controller = AdaptiveController(
        host, result,
        pinned={register: rid for rid, register in home.items()},
        config=ControllerConfig(
            interval=1.5, window=2, cooldown=5.0, margin=0.02,
            max_moves=3, min_writes=3, arm=2, dominance_rise=0.4,
            dominance_fall=0.25, compress_bytes_per_msg=18.0,
            reconfig_window=0.15,
        ),
    ).attach()
    run_result = run_open_loop(host, workload)
    placement = {
        rid: frozenset(host.share_graph.placement.registers_at(rid))
        for rid in sorted(host.share_graph.replica_ids)
    }
    return run_result, host, controller, placement


class TestClosedLoop:
    @pytest.mark.parametrize("seed", [3, 22])
    def test_sense_plan_act_is_deterministic_per_seed(self, seed):
        first = _adaptive_run(seed)
        second = _adaptive_run(seed)
        assert [d.describe() for d in first[2].decisions] == [
            d.describe() for d in second[2].decisions
        ]
        assert first[1].metrics.reconfigs == second[1].metrics.reconfigs
        assert first[3] == second[3]
        assert first[0].consistent and second[0].consistent

    def test_drifting_hotspot_triggers_reconfigs_and_stays_consistent(self):
        run_result, host, controller, _ = _adaptive_run(22)
        assert run_result.consistent
        assert controller.plans_installed > 0
        assert host.metrics.reconfigs > 0

    def test_steady_workload_triggers_zero_reconfigs(self):
        """Hysteresis: a uniform write mix never arms the planner."""
        spec = PlacementSpec.make(
            geant_like(), num_replicas=10, num_registers=16,
            replication_factor=2, capacity=6,
        )
        result = placement_policies()["availability-aware"].place(spec, seed=5)
        workload = poisson_workload(
            result.share_graph, rate=2.0, duration=120.0,
            write_fraction=0.5, seed=5,
        )
        host = Cluster(
            result.share_graph,
            replica_factory=edge_indexed_factory,
            delay_model=result.delay_model(jitter=0.05),
            seed=5,
            wire_accounting=True,
        )
        controller = AdaptiveController(host, result).attach()
        run_result = run_open_loop(host, workload)
        assert run_result.consistent
        assert controller.plans_installed == 0
        assert controller.decisions == []
        assert host.metrics.reconfigs == 0
