"""Unit tests for repro.sim.network and repro.sim.delays."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import SimulationError
from repro.core.protocol import Update, UpdateMessage
from repro.sim.delays import (
    AdversarialDelay,
    DuplicatingDelay,
    FixedDelay,
    LossyDelay,
    PerChannelDelay,
    SlowChannelDelay,
    UniformDelay,
)
from repro.sim.network import SimNetwork


def msg(sender=1, dest=2, seq=1, size=4, payload=True):
    update = Update(issuer=sender, seq=seq, register="x", value=seq)
    return UpdateMessage(
        update=update,
        sender=sender,
        destination=dest,
        metadata=None,
        metadata_size=size,
        payload=payload,
    )


class TestDelayModels:
    def test_fixed_delay(self):
        assert FixedDelay(3.5).delay(msg(), random.Random(0)) == 3.5

    def test_uniform_delay_within_bounds(self):
        model = UniformDelay(2.0, 5.0)
        rng = random.Random(1)
        for _ in range(100):
            d = model.delay(msg(), rng)
            assert 2.0 <= d <= 5.0

    def test_per_channel_delay(self):
        model = PerChannelDelay(base={(1, 2): 10.0}, default=1.0)
        rng = random.Random(0)
        assert model.delay(msg(1, 2), rng) == 10.0
        assert model.delay(msg(2, 1), rng) == 1.0

    def test_per_channel_jitter(self):
        model = PerChannelDelay(default=1.0, jitter=0.5)
        rng = random.Random(0)
        d = model.delay(msg(), rng)
        assert 1.0 <= d <= 1.5

    def test_adversarial_delay_uses_chooser(self):
        model = AdversarialDelay(chooser=lambda m: 42.0 if m.destination == 3 else 1.0)
        rng = random.Random(0)
        assert model.delay(msg(1, 3), rng) == 42.0
        assert model.delay(msg(1, 2), rng) == 1.0

    def test_slow_channel_delay(self):
        model = SlowChannelDelay(slow_channels=frozenset({(1, 3)}), low=1, high=1, slow_factor=50)
        rng = random.Random(0)
        assert model.delay(msg(1, 3), rng) == pytest.approx(50.0)
        assert model.delay(msg(1, 2), rng) == pytest.approx(1.0)


class TestDelayModelDeterminism:
    """Every delay model is a pure function of (message sequence, seeded rng)."""

    MODELS = [
        FixedDelay(3.0),
        UniformDelay(1.0, 10.0),
        PerChannelDelay(base={(1, 2): 5.0}, default=2.0, jitter=1.5),
        SlowChannelDelay(slow_channels=frozenset({(1, 3)}), low=1, high=4),
        AdversarialDelay(chooser=lambda m: float(m.update.seq)),
        LossyDelay(inner=UniformDelay(1, 10), drop_probability=0.3),
        DuplicatingDelay(inner=UniformDelay(1, 10), duplicate_probability=0.3),
        DuplicatingDelay(
            inner=LossyDelay(inner=PerChannelDelay(default=2.0, jitter=2.0),
                             drop_probability=0.2),
            duplicate_probability=0.2,
        ),
    ]

    @staticmethod
    def trace(model, seed):
        """The full (fate, delay) sequence over a fixed message stream."""
        rng = random.Random(seed)
        out = []
        for seq in range(1, 50):
            message = msg(sender=1 + seq % 3, dest=2 + seq % 2, seq=seq)
            out.append((model.fate(message, rng), model.delay(message, rng)))
        return out

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_same_seed_same_sequence(self, model):
        assert self.trace(model, 42) == self.trace(model, 42)

    def test_different_seed_differs_for_random_models(self):
        model = LossyDelay(inner=UniformDelay(1, 10), drop_probability=0.3)
        assert self.trace(model, 1) != self.trace(model, 2)

    def test_default_fate_is_exactly_once_and_draws_nothing(self):
        rng = random.Random(0)
        before = rng.getstate()
        assert FixedDelay(1.0).fate(msg(), rng) == 1
        assert rng.getstate() == before

    def test_lossy_fate_values(self):
        model = LossyDelay(inner=FixedDelay(1.0), drop_probability=1.0)
        assert model.fate(msg(), random.Random(0)) == 0
        keep = LossyDelay(inner=FixedDelay(1.0), drop_probability=0.0)
        assert keep.fate(msg(), random.Random(0)) == 1

    def test_duplicating_fate_values(self):
        model = DuplicatingDelay(inner=FixedDelay(1.0), duplicate_probability=1.0)
        assert model.fate(msg(), random.Random(0)) == 2
        # A dropped message has no copies to duplicate.
        stacked = DuplicatingDelay(
            inner=LossyDelay(inner=FixedDelay(1.0), drop_probability=1.0),
            duplicate_probability=1.0,
        )
        assert stacked.fate(msg(), random.Random(0)) == 0

    def test_channel_scoped_wrappers_leave_other_channels_alone(self):
        model = LossyDelay(inner=FixedDelay(1.0), drop_probability=1.0,
                           channels=frozenset({(1, 3)}))
        rng = random.Random(0)
        assert model.fate(msg(1, 3), rng) == 0
        assert model.fate(msg(1, 2), rng) == 1


class TestHoldPartitionInteraction:
    """Held channels and partitions are independent blocking reasons."""

    def test_partition_parks_cross_traffic_and_heal_delivers_once(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.partition({1, 2}, {3, 4})
        assert network.partitioned
        network.send(msg(1, 3))          # crosses the cut: parked
        network.send(msg(1, 2, seq=2))   # intra-island: flies
        assert network.held_count == 1
        assert network.pending_count() == 1
        network.heal()
        assert not network.partitioned
        assert network.held_count == 0
        deliveries = list(network.drain())
        assert sorted(d.message.destination for d in deliveries) == [2, 3]

    def test_held_message_survives_partition_heal(self):
        # Satellite acceptance: a hold placed before/under a partition keeps
        # its messages parked through the heal; release delivers exactly once.
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 3)
        network.partition({1, 2}, {3, 4})
        network.send(msg(1, 3))
        assert network.held_count == 1
        network.heal()
        # Still held: the explicit hold is not dissolved by the heal.
        assert network.held_count == 1
        assert network.deliver_next() is None
        network.release(1, 3)
        deliveries = list(network.drain())
        assert [d.message.destination for d in deliveries] == [3]

    def test_release_does_not_pierce_active_partition(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 3)
        network.partition({1, 2}, {3, 4})
        network.send(msg(1, 3))
        network.release(1, 3)
        # Released, but the partition still blocks the channel.
        assert network.held_count == 1
        assert network.deliver_next() is None
        network.heal()
        deliveries = list(network.drain())
        assert [d.message.destination for d in deliveries] == [3]

    def test_release_all_does_not_pierce_active_partition(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 3)
        network.hold(2, 4)
        network.partition({1, 2}, {3, 4})
        network.send(msg(1, 3))
        network.send(msg(2, 4, seq=2))
        network.send(msg(2, 1, seq=3))   # intra-island, unheld: flies
        network.release_all()
        assert network.held_count == 2
        network.heal()
        assert network.held_count == 0
        deliveries = list(network.drain())
        assert len(deliveries) == 3
        # Exactly once each, despite hold + partition + release_all + heal.
        uids = [(d.message.update.uid, d.message.destination) for d in deliveries]
        assert len(uids) == len(set(uids))

    def test_repartition_replaces_previous_groups(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.partition({1}, {2, 3, 4})
        network.send(msg(1, 2))
        assert network.held_count == 1
        # The new partition reunites 1 and 2: the parked message flies
        # immediately; traffic across the new cut parks instead.
        network.partition({1, 2}, {3, 4})
        assert network.held_count == 0
        assert network.pending_count() == 1
        network.send(msg(1, 3, seq=2))
        assert network.held_count == 1
        network.heal()
        deliveries = list(network.drain())
        assert len(deliveries) == 2
        uids = [(d.message.update.uid, d.message.destination) for d in deliveries]
        assert len(uids) == len(set(uids))


class TestSimNetwork:
    def test_send_and_deliver(self):
        network = SimNetwork(delay_model=FixedDelay(2.0), seed=0)
        network.send(msg())
        assert network.pending_count() == 1
        delivery = network.deliver_next()
        assert delivery is not None
        assert delivery.time == pytest.approx(2.0)
        assert network.now == pytest.approx(2.0)
        assert network.deliver_next() is None

    def test_delivery_order_follows_delays_not_send_order(self):
        network = SimNetwork(delay_model=AdversarialDelay(
            chooser=lambda m: 10.0 if m.update.seq == 1 else 1.0
        ), seed=0)
        network.send(msg(seq=1))
        network.send(msg(seq=2))
        first = network.deliver_next()
        second = network.deliver_next()
        assert first.message.update.seq == 2
        assert second.message.update.seq == 1

    def test_explicit_delay_override(self):
        network = SimNetwork(delay_model=FixedDelay(100.0), seed=0)
        network.send(msg(), delay=0.5)
        assert network.deliver_next().time == pytest.approx(0.5)

    def test_negative_delay_rejected(self):
        network = SimNetwork(seed=0)
        with pytest.raises(SimulationError):
            network.send(msg(), delay=-1.0)

    def test_stats_accumulate(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.send(msg(size=5))
        network.send(msg(seq=2, size=7, payload=False))
        assert network.stats.messages_sent == 2
        assert network.stats.metadata_counters_sent == 12
        assert network.stats.payload_messages_sent == 1
        assert network.stats.metadata_only_messages_sent == 1
        network.deliver_next()
        network.deliver_next()
        assert network.stats.messages_delivered == 2
        assert network.stats.mean_latency == pytest.approx(1.0)

    def test_hold_and_release(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 2)
        network.send(msg(1, 2))
        network.send(msg(1, 3, seq=2))
        assert network.pending_count() == 1
        assert network.held_count == 1
        assert network.in_flight() == 2
        # Only the unheld message is deliverable.
        assert network.deliver_next().message.destination == 3
        assert network.deliver_next() is None
        network.release(1, 2)
        assert network.held_count == 0
        assert network.deliver_next().message.destination == 2

    def test_release_all(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 2)
        network.hold(1, 3)
        network.send(msg(1, 2))
        network.send(msg(1, 3, seq=2))
        network.release_all()
        assert network.held_count == 0
        assert network.pending_count() == 2

    def test_drain(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        for seq in range(5):
            network.send(msg(seq=seq + 1))
        deliveries = list(network.drain())
        assert len(deliveries) == 5
        assert network.pending_count() == 0

    def test_determinism_with_same_seed(self):
        def run(seed):
            network = SimNetwork(delay_model=UniformDelay(1, 10), seed=seed)
            for seq in range(10):
                network.send(msg(seq=seq + 1))
            return [d.message.update.seq for d in network.drain()]

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) == run(8)  # same-seed equality is the real check
