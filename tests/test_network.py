"""Unit tests for repro.sim.network and repro.sim.delays."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import SimulationError
from repro.core.protocol import Update, UpdateMessage
from repro.sim.delays import (
    AdversarialDelay,
    FixedDelay,
    PerChannelDelay,
    SlowChannelDelay,
    UniformDelay,
)
from repro.sim.network import SimNetwork


def msg(sender=1, dest=2, seq=1, size=4, payload=True):
    update = Update(issuer=sender, seq=seq, register="x", value=seq)
    return UpdateMessage(
        update=update,
        sender=sender,
        destination=dest,
        metadata=None,
        metadata_size=size,
        payload=payload,
    )


class TestDelayModels:
    def test_fixed_delay(self):
        assert FixedDelay(3.5).delay(msg(), random.Random(0)) == 3.5

    def test_uniform_delay_within_bounds(self):
        model = UniformDelay(2.0, 5.0)
        rng = random.Random(1)
        for _ in range(100):
            d = model.delay(msg(), rng)
            assert 2.0 <= d <= 5.0

    def test_per_channel_delay(self):
        model = PerChannelDelay(base={(1, 2): 10.0}, default=1.0)
        rng = random.Random(0)
        assert model.delay(msg(1, 2), rng) == 10.0
        assert model.delay(msg(2, 1), rng) == 1.0

    def test_per_channel_jitter(self):
        model = PerChannelDelay(default=1.0, jitter=0.5)
        rng = random.Random(0)
        d = model.delay(msg(), rng)
        assert 1.0 <= d <= 1.5

    def test_adversarial_delay_uses_chooser(self):
        model = AdversarialDelay(chooser=lambda m: 42.0 if m.destination == 3 else 1.0)
        rng = random.Random(0)
        assert model.delay(msg(1, 3), rng) == 42.0
        assert model.delay(msg(1, 2), rng) == 1.0

    def test_slow_channel_delay(self):
        model = SlowChannelDelay(slow_channels=frozenset({(1, 3)}), low=1, high=1, slow_factor=50)
        rng = random.Random(0)
        assert model.delay(msg(1, 3), rng) == pytest.approx(50.0)
        assert model.delay(msg(1, 2), rng) == pytest.approx(1.0)


class TestSimNetwork:
    def test_send_and_deliver(self):
        network = SimNetwork(delay_model=FixedDelay(2.0), seed=0)
        network.send(msg())
        assert network.pending_count() == 1
        delivery = network.deliver_next()
        assert delivery is not None
        assert delivery.time == pytest.approx(2.0)
        assert network.now == pytest.approx(2.0)
        assert network.deliver_next() is None

    def test_delivery_order_follows_delays_not_send_order(self):
        network = SimNetwork(delay_model=AdversarialDelay(
            chooser=lambda m: 10.0 if m.update.seq == 1 else 1.0
        ), seed=0)
        network.send(msg(seq=1))
        network.send(msg(seq=2))
        first = network.deliver_next()
        second = network.deliver_next()
        assert first.message.update.seq == 2
        assert second.message.update.seq == 1

    def test_explicit_delay_override(self):
        network = SimNetwork(delay_model=FixedDelay(100.0), seed=0)
        network.send(msg(), delay=0.5)
        assert network.deliver_next().time == pytest.approx(0.5)

    def test_negative_delay_rejected(self):
        network = SimNetwork(seed=0)
        with pytest.raises(SimulationError):
            network.send(msg(), delay=-1.0)

    def test_stats_accumulate(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.send(msg(size=5))
        network.send(msg(seq=2, size=7, payload=False))
        assert network.stats.messages_sent == 2
        assert network.stats.metadata_counters_sent == 12
        assert network.stats.payload_messages_sent == 1
        assert network.stats.metadata_only_messages_sent == 1
        network.deliver_next()
        network.deliver_next()
        assert network.stats.messages_delivered == 2
        assert network.stats.mean_latency == pytest.approx(1.0)

    def test_hold_and_release(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 2)
        network.send(msg(1, 2))
        network.send(msg(1, 3, seq=2))
        assert network.pending_count() == 1
        assert network.held_count == 1
        assert network.in_flight() == 2
        # Only the unheld message is deliverable.
        assert network.deliver_next().message.destination == 3
        assert network.deliver_next() is None
        network.release(1, 2)
        assert network.held_count == 0
        assert network.deliver_next().message.destination == 2

    def test_release_all(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        network.hold(1, 2)
        network.hold(1, 3)
        network.send(msg(1, 2))
        network.send(msg(1, 3, seq=2))
        network.release_all()
        assert network.held_count == 0
        assert network.pending_count() == 2

    def test_drain(self):
        network = SimNetwork(delay_model=FixedDelay(1.0), seed=0)
        for seq in range(5):
            network.send(msg(seq=seq + 1))
        deliveries = list(network.drain())
        assert len(deliveries) == 5
        assert network.pending_count() == 0

    def test_determinism_with_same_seed(self):
        def run(seed):
            network = SimNetwork(delay_model=UniformDelay(1, 10), seed=seed)
            for seq in range(10):
                network.send(msg(seq=seq + 1))
            return [d.message.update.seq for d in network.drain()]

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) == run(8)  # same-seed equality is the real check
