"""The kernel layer: runtime selector contract and kernel semantics.

:mod:`repro._speedups` is the seam between the library and its optional
mypyc-compiled core.  These tests pin (a) the selector contract — pure
fallback always importable, ``REPRO_PURE_PYTHON=1`` honoured, the active
core honestly reported — and (b) the kernel semantics against independent
reference implementations, so a compiled build that drifts from the pure
source fails loudly rather than corrupting timestamps quietly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._speedups import (
    _tsops_py,
    _varint_py,
    active_core,
    compiled_active,
    tsops,
    varint,
)
from repro.core.errors import WireFormatError

SRC = str(Path(__file__).resolve().parent.parent / "src")

# ----------------------------------------------------------------------
# The runtime selector
# ----------------------------------------------------------------------


def test_selector_reports_a_coherent_core():
    assert active_core() in ("pure", "compiled")
    assert compiled_active() == (active_core() == "compiled")
    if not compiled_active():
        # Without the compiled extension the selector must be serving the
        # pure-Python reference modules, not some stray ``*_c`` copy.
        assert tsops is _tsops_py
        assert varint is _varint_py


def test_selector_honours_repro_pure_python():
    """REPRO_PURE_PYTHON=1 must pin the pure kernels in a fresh interpreter."""
    code = (
        "from repro._speedups import active_core, tsops, _tsops_py\n"
        "assert active_core() == 'pure', active_core()\n"
        "assert tsops is _tsops_py\n"
        "print('ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "REPRO_PURE_PYTHON": "1", "PATH": "/usr/bin"},
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"


def test_facades_serve_the_selected_kernels():
    """The public wire primitives are bindings of the selected kernel."""
    from repro.wire import primitives

    assert primitives.encode_uvarint is varint.encode_uvarint
    assert primitives.decode_atom is varint.decode_atom
    assert primitives.encode_bytes_into is varint.encode_bytes_into


# ----------------------------------------------------------------------
# Timestamp kernels vs reference semantics
# ----------------------------------------------------------------------

counter_dicts = st.dictionaries(
    st.integers(1, 6), st.integers(0, 4), max_size=6
)


@given(local=counter_dicts, remote=counter_dicts)
def test_merge_union_reference(local, remote):
    merged, changed = tsops.merge_union(local, remote)
    keys = set(local) | set(remote)
    assert merged == {
        k: max(local.get(k, 0), remote.get(k, 0)) for k in keys
    }
    assert changed == [
        (k, v)
        for k, v in remote.items()
        if v > local.get(k, 0)
    ]
    # Inputs are never mutated; the result is a fresh dict.
    assert merged is not local and merged is not remote


@given(local=counter_dicts, remote=counter_dicts, me=st.integers(1, 6))
def test_merge_intersection_reference(local, remote, me):
    # Edge keys are (tail, head) tuples; reuse int dicts as (k, me)-keyed.
    local_e = {(k, k % 2 + 1): v for k, v in local.items()}
    remote_e = {(k, k % 2 + 1): v for k, v in remote.items()}
    merged, changed = tsops.merge_intersection(local_e, remote_e, me)
    assert merged.keys() == local_e.keys(), "index set τ_i never grows"
    assert merged == {
        k: max(v, remote_e.get(k, v)) for k, v in local_e.items()
    }
    assert changed == sorted(
        (k, v)
        for k, v in remote_e.items()
        if k in local_e and v > local_e[k] and k[1] == me
    )


def _naive_vector_blocking(local, remote, sender):
    if remote.get(sender, 0) != local.get(sender, 0) + 1:
        return ("seq", sender, remote.get(sender, 0))
    for key, value in remote.items():
        if key != sender and value > local.get(key, 0):
            return ("ge", key)
    return None


@given(local=counter_dicts, remote=counter_dicts, sender=st.integers(1, 6))
def test_vector_blocking_key_reference(local, remote, sender):
    assert tsops.vector_blocking_key(local, remote, sender) == (
        _naive_vector_blocking(local, remote, sender)
    )


@given(local=counter_dicts, remote=counter_dicts, sender=st.integers(1, 6))
def test_vector_try_apply_is_check_plus_merge(local, remote, sender):
    """The fused kernel ≡ blocking check, then union merge, in one scan."""
    key, merged, changed = tsops.vector_try_apply(local, remote, sender)
    assert key == _naive_vector_blocking(local, remote, sender)
    if key is not None:
        assert merged is None and changed is None
        return
    ref_merged, ref_changed = tsops.merge_union(local, remote)
    assert merged == ref_merged
    assert changed == ref_changed == [(sender, remote.get(sender, 0))]


@given(local=counter_dicts, sender=st.integers(1, 6), bump=st.integers(1, 3))
def test_vector_try_apply_no_scan_accept(local, sender, bump):
    """The cached-total fast path agrees with the scanning path exactly."""
    remote = {k: 0 for k in local}
    remote[sender] = local.get(sender, 0) + 1
    total = sum(remote.values())
    fast = tsops.vector_try_apply(local, remote, sender, total)
    slow = tsops.vector_try_apply(local, remote, sender)
    assert fast == slow
    assert fast[0] is None


def _naive_edge_blocking(local, remote, sender, me, incoming):
    ki = (sender, me)
    if local.get(ki, 0) != remote.get(ki, 0) - 1:
        return ("seq", ki, remote.get(ki, 0))
    for e in incoming:
        if e[0] != sender and e in remote and local.get(e, 0) < remote[e]:
            return ("ge", e)
    return None


@given(data=st.data())
def test_edge_blocking_key_reference(data):
    me = 1
    tails = data.draw(st.sets(st.integers(2, 6), min_size=1, max_size=5))
    incoming = tuple(sorted((t, me) for t in tails))
    sender = data.draw(st.sampled_from(sorted(tails)))
    values = st.integers(0, 3)
    local = {e: data.draw(values) for e in incoming}
    remote = {
        e: data.draw(values)
        for e in incoming
        if data.draw(st.booleans())
    }
    assert tsops.edge_blocking_key(local, remote, sender, me, incoming) == (
        _naive_edge_blocking(local, remote, sender, me, incoming)
    )


# ----------------------------------------------------------------------
# Varint kernels: roundtrips, sizes, zero-copy inputs, malformed input
# ----------------------------------------------------------------------

atoms = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=24),
)


@given(value=st.integers(min_value=0, max_value=2**70))
def test_uvarint_roundtrip_and_size(value):
    encoded = varint.encode_uvarint(value)
    assert len(encoded) == varint.uvarint_size(value)
    assert varint.decode_uvarint(encoded) == (value, len(encoded))
    # Zero-copy decode: a memoryview over a larger buffer, at an offset.
    framed = memoryview(b"\xff" + encoded)
    assert varint.decode_uvarint(framed, 1) == (value, 1 + len(encoded))


@given(value=st.integers(min_value=-(2**60), max_value=2**60))
def test_svarint_roundtrip(value):
    encoded = varint.encode_svarint(value)
    assert varint.decode_svarint(encoded) == (value, len(encoded))
    assert varint.unzigzag(varint.zigzag(value)) == value


@given(value=atoms)
def test_atom_roundtrip_and_size(value):
    encoded = varint.encode_atom(value)
    assert len(encoded) == varint.atom_size(value)
    decoded, end = varint.decode_atom(memoryview(encoded))
    assert decoded == value and type(decoded) is type(value)
    assert end == len(encoded)


@given(value=st.binary(max_size=64))
def test_bytes_roundtrip_returns_real_bytes(value):
    encoded = varint.encode_bytes(value)
    decoded, end = varint.decode_bytes(memoryview(encoded))
    assert decoded == value and isinstance(decoded, bytes)
    assert end == len(encoded)


def test_into_encoders_append_to_shared_buffer():
    out = bytearray(b"prefix")
    varint.encode_uvarint_into(out, 300)
    varint.encode_atom_into(out, "reg")
    varint.encode_bytes_into(out, b"\x00\x01")
    assert out[:6] == b"prefix"
    value, offset = varint.decode_uvarint(out, 6)
    assert value == 300
    atom, offset = varint.decode_atom(out, offset)
    assert atom == "reg"
    payload, offset = varint.decode_bytes(out, offset)
    assert payload == b"\x00\x01" and offset == len(out)


@pytest.mark.parametrize(
    "blob",
    [b"", b"\x80", b"\x80\x80"],
    ids=["empty", "continuation-then-eof", "two-continuations"],
)
def test_truncated_uvarint_raises(blob):
    with pytest.raises(WireFormatError):
        varint.decode_uvarint(blob)


def test_truncated_atom_and_bytes_raise():
    with pytest.raises(WireFormatError):
        varint.decode_atom(varint.encode_atom("hello")[:-2])
    with pytest.raises(WireFormatError):
        varint.decode_bytes(varint.encode_bytes(b"hello")[:-2])
    with pytest.raises(WireFormatError):
        varint.encode_uvarint(-1)
    with pytest.raises(WireFormatError):
        varint.encode_atom(True)
