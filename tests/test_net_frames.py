"""Control-payload codecs: STATS, TELEMETRY, and their degenerate shapes.

``tests/test_net_framing.py`` covers the framing layer and the basic
frame round-trips; this module drills into the structured control
payloads the launcher's drain/observability machinery depends on —
including the empty and degenerate progress books a freshly booted or
fully idle node reports.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import frames
from repro.wire.primitives import WireFormatError

# ----------------------------------------------------------------------
# STATS: scalar counters + progress books
# ----------------------------------------------------------------------

counters = st.integers(min_value=0, max_value=2**40)
replica_ids = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1, max_size=12,
    ),
)
channels = st.tuples(replica_ids, replica_ids)
books = st.dictionaries(channels, counters, max_size=8)


@given(
    stats=st.builds(
        frames.NodeStats,
        **{name: counters for name in frames.NodeStats._FIELDS},
    ),
    outbox=books,
    inbox=books,
)
def test_stats_payload_roundtrip(stats, outbox, inbox):
    payload = frames.encode_stats_payload(stats, outbox, inbox)
    decoded_stats, decoded_outbox, decoded_inbox = frames.decode_stats_payload(
        payload
    )
    assert decoded_stats == stats
    assert decoded_outbox == outbox
    assert decoded_inbox == inbox


def test_stats_payload_empty_books():
    """A freshly booted node: all counters zero, both books empty."""
    stats = frames.NodeStats()
    payload = frames.encode_stats_payload(stats, {}, {})
    decoded_stats, outbox, inbox = frames.decode_stats_payload(payload)
    assert decoded_stats == frames.NodeStats()
    assert outbox == {} and inbox == {}


def test_stats_payload_zero_valued_books_survive():
    """A channel with 0 logged updates is still an entry, not an omission."""
    stats = frames.NodeStats(ops_done=1)
    payload = frames.encode_stats_payload(
        stats, {(1, 2): 0, (1, 3): 7}, {("w", 1): 0}
    )
    _, outbox, inbox = frames.decode_stats_payload(payload)
    assert outbox == {(1, 2): 0, (1, 3): 7}
    assert inbox == {("w", 1): 0}


def test_stats_payload_mixed_id_types_order_deterministic():
    """Int and str replica ids coexist; encoding order is deterministic."""
    stats = frames.NodeStats()
    book = {("b", 1): 1, (2, "b"): 2, ("a", "a"): 3, (1, 2): 4}
    first = frames.encode_stats_payload(stats, book, {})
    second = frames.encode_stats_payload(stats, dict(reversed(book.items())), {})
    assert first == second
    _, decoded, _ = frames.decode_stats_payload(first)
    assert decoded == book


def test_stats_payload_trailing_bytes_rejected():
    payload = frames.encode_stats_payload(frames.NodeStats(), {}, {})
    with pytest.raises(WireFormatError):
        frames.decode_stats_payload(payload + b"\x00")


def test_stats_payload_truncated_rejected():
    payload = frames.encode_stats_payload(
        frames.NodeStats(issued=300), {(1, 2): 9}, {}
    )
    with pytest.raises(WireFormatError):
        frames.decode_stats_payload(payload[:-1])


# ----------------------------------------------------------------------
# TELEMETRY: periodic metrics samples
# ----------------------------------------------------------------------

label_atoms = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1, max_size=16,
)
samples_strategy = st.lists(
    st.tuples(
        label_atoms,  # metric name
        st.lists(st.tuples(label_atoms, label_atoms), max_size=3).map(tuple),
        st.one_of(
            st.integers(min_value=0, max_value=2**50).map(float),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
    ),
    max_size=12,
)


@given(
    sampled_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    replica_id=replica_ids,
    samples=samples_strategy,
)
def test_telemetry_payload_roundtrip(sampled_at, replica_id, samples):
    payload = frames.encode_telemetry_payload(sampled_at, replica_id, samples)
    decoded_at, decoded_replica, decoded = frames.decode_telemetry_payload(
        payload
    )
    assert decoded_at == sampled_at
    assert decoded_replica == replica_id
    assert decoded == samples


def test_telemetry_payload_empty_samples():
    """An idle node's sample list can legitimately be empty."""
    payload = frames.encode_telemetry_payload(1.5, 3, [])
    sampled_at, replica_id, samples = frames.decode_telemetry_payload(payload)
    assert (sampled_at, replica_id, samples) == (1.5, 3, [])


def test_telemetry_payload_unlabelled_and_labelled_mix():
    samples = [
        ("repro_node_sent_total", (), 42.0),
        ("repro_node_wire_timestamp_bytes_total",
         (("dst", "2"), ("src", "1")), 1234.0),
        ("repro_node_send_queue_depth", (("replica", "1"),), 0.0),
    ]
    payload = frames.encode_telemetry_payload(0.25, "node-a", samples)
    _, _, decoded = frames.decode_telemetry_payload(payload)
    assert decoded == samples


def test_telemetry_payload_trailing_bytes_rejected():
    payload = frames.encode_telemetry_payload(1.0, 1, [])
    with pytest.raises(WireFormatError):
        frames.decode_telemetry_payload(payload + b"\x01")


def test_telemetry_frame_kind_is_distinct():
    """TELEMETRY must not collide with any existing control frame kind."""
    kinds = {
        frames.HELLO, frames.SYNC, frames.BATCH, frames.ACK,
        frames.CONTROL_HELLO, frames.ADDR, frames.OP, frames.OP_REPLY,
        frames.STATS_REQ, frames.STATS, frames.REPORT_REQ, frames.REPORT,
        frames.SHUTDOWN, frames.TELEMETRY,
    }
    assert len(kinds) == 14
