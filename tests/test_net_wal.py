"""Log-structured durability unit tests: record codecs, torn tails,
compaction crash windows, and the fsync-before-rename discipline.

These drive :mod:`repro.net.wal` directly — no processes, no sockets —
simulating every crash point a SIGKILL can hit: mid-append (torn final
record), between checkpoint write and rename (orphan ``.ckpt.tmp``), and
between rename and old-log cleanup (stale generation).
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.protocol import Update, UpdateMessage
from repro.core.timestamps import EdgeTimestamp
from repro.net import wal
from repro.net.framing import encode_frame
from repro.wire.batch import MessageBatch


def _message(seq, sender=1, destination=2):
    ts = EdgeTimestamp({(sender, destination): seq})
    return UpdateMessage(
        update=Update(issuer=sender, seq=seq, register="x", value=f"v{seq}"),
        sender=sender,
        destination=destination,
        metadata=ts,
        metadata_size=ts.size_counters(),
        payload=True,
    )


# ----------------------------------------------------------------------
# Record codecs
# ----------------------------------------------------------------------

def test_write_and_read_record_roundtrip():
    register, value, at = "x", {"k": [1, 2]}, 3.25
    assert wal.decode_write_record(
        wal.encode_write_record(register, value, at)
    ) == (register, value, at)
    assert wal.decode_read_record(
        wal.encode_read_record(register, at)
    ) == (register, at)


def test_deliver_record_roundtrip_is_standalone():
    """DELIVER records replay without any delta-chain context."""
    batch = MessageBatch(
        sender=1, destination=2, seq=0,
        messages=(_message(1), _message(2)),
    )
    payload = wal.encode_deliver_record(0.75, batch, codec=None)
    received_at, decoded = wal.decode_deliver_record(payload)
    assert received_at == 0.75
    assert decoded == batch


def test_ack_record_roundtrip():
    uids = [(1, 3), (1, 4), ("w", 1)]
    assert wal.decode_ack_record(wal.encode_ack_record("r2", uids)) == (
        "r2", uids
    )


# ----------------------------------------------------------------------
# Append / load / torn tails
# ----------------------------------------------------------------------

def test_append_then_load_replays_records_in_order(tmp_path):
    log = wal.ReplicaWAL(str(tmp_path), 1)
    assert log.load() == (None, [])
    payloads = [
        (wal.W_WRITE, wal.encode_write_record("x", 1, 0.1)),
        (wal.W_READ, wal.encode_read_record("x", 0.2)),
        (wal.W_ACK, wal.encode_ack_record(2, [(1, 1)])),
    ]
    for kind, payload in payloads:
        log.append(kind, payload)
    log.close()

    reopened = wal.ReplicaWAL(str(tmp_path), 1)
    checkpoint, records = reopened.load()
    assert checkpoint is None
    assert records == payloads
    reopened.close()


def test_torn_tail_is_truncated_and_log_stays_appendable(tmp_path):
    log = wal.ReplicaWAL(str(tmp_path), 1)
    log.load()
    log.append(wal.W_WRITE, wal.encode_write_record("x", 1, 0.1))
    log.append(wal.W_WRITE, wal.encode_write_record("x", 2, 0.2))
    log.close()
    # A SIGKILL mid-append leaves a prefix of the final frame.
    path = log._log_path(0)
    torn = encode_frame(wal.W_WRITE, wal.encode_write_record("x", 3, 0.3))
    with open(path, "ab") as handle:
        handle.write(torn[:len(torn) - 2])

    reopened = wal.ReplicaWAL(str(tmp_path), 1)
    _, records = reopened.load()
    assert [wal.decode_write_record(p)[1] for _, p in records] == [1, 2]
    # The torn bytes are gone from disk and appends continue cleanly.
    reopened.append(wal.W_WRITE, wal.encode_write_record("x", 4, 0.4))
    reopened.close()
    final = wal.ReplicaWAL(str(tmp_path), 1)
    _, records = final.load()
    assert [wal.decode_write_record(p)[1] for _, p in records] == [1, 2, 4]
    final.close()


def test_append_is_o_delta_not_o_state(tmp_path):
    """The hot path never rewrites the log: each append grows the file by
    exactly one frame, independent of how much history precedes it."""
    log = wal.ReplicaWAL(str(tmp_path), 1)
    log.load()
    payload = wal.encode_write_record("x", "v", 1.0)
    frame_size = len(encode_frame(wal.W_WRITE, payload))
    sizes = []
    for _ in range(50):
        log.append(wal.W_WRITE, payload)
        sizes.append(os.path.getsize(log._log_path(0)))
    log.close()
    deltas = [b - a for a, b in zip(sizes, sizes[1:])]
    assert deltas == [frame_size] * len(deltas)


# ----------------------------------------------------------------------
# Compaction and its crash windows
# ----------------------------------------------------------------------

def _checkpoint_state(marker):
    return wal.WalCheckpoint(
        replica=("snapshot", marker),
        sent_log={}, outbox_total={}, streams={}, apply_times={},
    )


def test_compaction_rolls_generation_and_drops_old_log(tmp_path):
    log = wal.ReplicaWAL(str(tmp_path), 1, compact_bytes=1)
    log.load()
    log.append(wal.W_WRITE, wal.encode_write_record("x", 1, 0.1))
    assert log.should_compact()
    log.checkpoint(_checkpoint_state("A"))
    assert log.generation == 1 and log.wal_bytes == 0
    log.append(wal.W_WRITE, wal.encode_write_record("x", 2, 0.2))
    log.close()

    reopened = wal.ReplicaWAL(str(tmp_path), 1)
    checkpoint, records = reopened.load()
    assert checkpoint.replica == ("snapshot", "A")
    assert checkpoint.generation == 1
    assert [wal.decode_write_record(p)[1] for _, p in records] == [2]
    assert not os.path.exists(log._log_path(0))
    reopened.close()


def test_kill_between_checkpoint_write_and_rename_recovers_previous(tmp_path):
    """The ISSUE 8 hardening satellite: a crash after writing the new
    checkpoint bytes but *before* the atomic rename must recover the
    previous consistent state — the orphan ``.ckpt.tmp`` and the stale
    next-generation log are both discarded."""
    log = wal.ReplicaWAL(str(tmp_path), 1)
    log.load()
    log.checkpoint(_checkpoint_state("committed"))   # generation -> 1
    log.append(wal.W_WRITE, wal.encode_write_record("x", 7, 0.7))
    log.close()
    # Simulate the interrupted second compaction: the next-gen log exists,
    # the new checkpoint sits fully written at .tmp, the rename never ran.
    open(os.path.join(tmp_path, "replica-1.wal.2"), "wb").close()
    with open(os.path.join(tmp_path, "replica-1.ckpt.tmp"), "wb") as handle:
        pickle.dump(_checkpoint_state("torn"), handle)

    reopened = wal.ReplicaWAL(str(tmp_path), 1)
    checkpoint, records = reopened.load()
    assert checkpoint.replica == ("snapshot", "committed")
    assert [wal.decode_write_record(p)[1] for _, p in records] == [7]
    assert not os.path.exists(os.path.join(tmp_path, "replica-1.ckpt.tmp"))
    assert not os.path.exists(os.path.join(tmp_path, "replica-1.wal.2"))
    reopened.close()


def test_kill_between_rename_and_log_cleanup_recovers_new(tmp_path):
    """After the rename commits, the *new* checkpoint is authoritative:
    the leftover previous-generation log must be ignored and deleted."""
    log = wal.ReplicaWAL(str(tmp_path), 1)
    log.load()
    log.append(wal.W_WRITE, wal.encode_write_record("x", 1, 0.1))
    log.checkpoint(_checkpoint_state("new"))         # generation -> 1
    log.close()
    # Resurrect the old log as if cleanup never ran.
    with open(os.path.join(tmp_path, "replica-1.wal.0"), "wb") as handle:
        handle.write(encode_frame(wal.W_WRITE,
                                  wal.encode_write_record("x", 99, 9.9)))

    reopened = wal.ReplicaWAL(str(tmp_path), 1)
    checkpoint, records = reopened.load()
    assert checkpoint.replica == ("snapshot", "new")
    assert records == []
    assert not os.path.exists(os.path.join(tmp_path, "replica-1.wal.0"))
    reopened.close()


def test_checkpoint_fsyncs_before_rename(tmp_path, monkeypatch):
    """The rename must never publish a checkpoint whose bytes are still in
    flight: ``os.fsync`` on the temp file strictly precedes ``os.replace``."""
    calls = []
    real_fsync, real_replace = os.fsync, os.replace
    monkeypatch.setattr(
        os, "fsync", lambda fd: (calls.append("fsync"), real_fsync(fd))[1]
    )
    monkeypatch.setattr(
        os, "replace",
        lambda src, dst: (calls.append("replace"), real_replace(src, dst))[1],
    )
    log = wal.ReplicaWAL(str(tmp_path), 1)
    log.load()
    log.checkpoint(_checkpoint_state("A"))
    log.close()
    assert "fsync" in calls and "replace" in calls
    assert calls.index("fsync") < calls.index("replace")


def test_oversized_record_rejected_before_hitting_disk(tmp_path):
    from repro.wire.primitives import WireFormatError

    log = wal.ReplicaWAL(str(tmp_path), 1)
    log.load()
    with pytest.raises(WireFormatError):
        log.append(wal.W_WRITE, b"x" * (64 * 1024 * 1024))
    log.close()
