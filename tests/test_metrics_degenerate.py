"""Degenerate-input regression tests for the metrics layer.

An empty run — no operations, no deliveries, no samples, a clock that never
advanced — must flow through every summary/percentile helper and produce
well-defined values instead of raising.  These tests pin that contract for
:class:`~repro.sim.engine.LatencySummary`, :class:`~repro.sim.engine.RunMetrics`,
:class:`~repro.sim.metrics.MetadataProfile` and the byte-accounting additions.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster
from repro.sim.engine import (
    LatencySummary,
    NetworkStats,
    RunMetrics,
    throughput_timeline,
)
from repro.sim.metrics import MetadataProfile
from repro.sim.topologies import figure5_placement
from repro.sim.workloads import (
    OpenLoopWorkload,
    Workload,
    run_open_loop,
    run_workload,
)


class TestLatencySummaryDegenerate:
    def test_empty_samples_yield_zeros(self):
        summary = LatencySummary.from_samples([])
        assert summary == LatencySummary(
            count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0
        )

    def test_single_sample_is_every_percentile(self):
        summary = LatencySummary.from_samples([4.5])
        assert summary.count == 1
        assert summary.mean == summary.p50 == summary.p90 == summary.p99 == 4.5
        assert summary.max == 4.5


class TestRunMetricsDegenerate:
    def test_empty_metrics_summaries_do_not_raise(self):
        metrics = RunMetrics()
        assert metrics.mean_apply_latency == 0.0
        assert metrics.apply_latency_summary().count == 0
        assert metrics.operation_latency_summary().count == 0
        assert metrics.recovery_latency_summary().count == 0
        assert metrics.apply_throughput(10.0) == []
        assert metrics.operation_throughput(10.0) == []
        assert metrics.queue_depth_summary() == {}

    def test_availability_with_zero_horizon_is_full(self):
        # An empty run never advances the clock; the availability of an
        # unobserved window is full availability, not an exception.
        metrics = RunMetrics()
        assert metrics.availability(0.0, [1, 2, 3]) == {1: 1.0, 2: 1.0, 3: 1.0}
        metrics.downtime[1] = [(0.0, 5.0)]
        assert metrics.availability(0.0, [1]) == {1: 1.0}

    def test_availability_with_no_replicas_is_empty(self):
        assert RunMetrics().availability(10.0, []) == {}

    def test_throughput_timeline_empty(self):
        assert throughput_timeline([], 5.0) == []


class TestMetadataProfileDegenerate:
    def test_empty_profile_means_and_maxima(self):
        profile = MetadataProfile(
            protocol="empty", counters_per_replica={}, storage_per_replica={}
        )
        assert profile.mean_counters == 0.0
        assert profile.max_counters == 0
        assert profile.total_storage == 0
        assert profile.bits_per_replica(max_updates=16) == {}


class TestNetworkStatsDegenerate:
    def test_fresh_stats_ratios_are_zero(self):
        stats = NetworkStats()
        assert stats.mean_latency == 0.0
        assert stats.bytes_sent == 0
        assert stats.timestamp_delta_savings == 0.0
        assert stats.per_channel == {}


class TestWallClockTimelines:
    """Robustness of the bucketing helpers to live-run (wall-clock) times.

    Live runs feed float timestamps whose epoch is arbitrary: huge when a
    caller forgets to normalise (raw ``time.time()``), slightly *negative*
    or pre-origin when samples land before the declared run start.  The
    timeline must stay small, anchored and total — never an out-of-memory
    bucket explosion, never silently dropped samples.
    """

    def test_auto_origin_anchors_at_earliest_event(self):
        epoch = 1.7e9  # raw time.time()-style timestamps
        times = [epoch + 0.4, epoch + 1.2, epoch + 5.1]
        timeline = throughput_timeline(times, 1.0, origin=None)
        assert len(timeline) == 6
        assert timeline[0][0] == 1.7e9
        assert sum(count for _, count in timeline) == 3

    def test_auto_origin_rounds_down_to_bucket_boundary(self):
        timeline = throughput_timeline([7.3, 9.9], 2.5, origin=None)
        assert timeline[0][0] == 5.0  # floor(7.3 / 2.5) * 2.5
        assert sum(count for _, count in timeline) == 2

    def test_explicit_origin_clamps_earlier_events_into_first_bucket(self):
        # A sample taken just before the declared run start (non-monotonic
        # wall clock, setup samples) is counted, not dropped.
        timeline = throughput_timeline([-0.3, 0.2, 1.7], 1.0, origin=0.0)
        assert timeline == [(0.0, 2), (1.0, 1)]

    def test_negative_times_with_auto_origin(self):
        timeline = throughput_timeline([-3.2, -1.1], 1.0, origin=None)
        assert timeline[0][0] == -4.0
        assert sum(count for _, count in timeline) == 2

    def test_wall_clock_against_zero_origin_raises_not_ooms(self):
        # The classic bug this hardening exists for: bucketing raw epoch
        # seconds against the simulator's default origin of 0 would
        # materialise ~1.7 billion buckets.  Diagnostic error instead.
        with pytest.raises(SimulationError, match="origin"):
            throughput_timeline([1.7e9], 1.0)

    def test_run_metrics_throughput_accepts_origin(self):
        metrics = RunMetrics()
        epoch = 1.7e9
        metrics.apply_times = [epoch + 0.1, epoch + 0.9, epoch + 3.0]
        metrics.operation_times = [(epoch + 0.5, "write")]
        assert len(metrics.apply_throughput(1.0, origin=None)) == 4
        assert metrics.apply_throughput(1.0, origin=epoch)[0] == (epoch, 2)
        assert metrics.operation_throughput(1.0, origin=None) == [(epoch, 1)]

    def test_zero_and_negative_bucket_widths_still_raise(self):
        with pytest.raises(SimulationError):
            throughput_timeline([1.0], 0.0, origin=None)
        with pytest.raises(SimulationError):
            throughput_timeline([1.0], -2.0)


class TestEmptyRuns:
    def test_empty_closed_loop_workload(self):
        graph = ShareGraph.from_placement(figure5_placement())
        cluster = Cluster(graph, seed=1)
        result = run_workload(cluster, Workload("empty", ()))
        assert result.consistent
        assert result.messages_sent == 0
        assert result.mean_apply_latency == 0.0

    def test_empty_open_loop_workload(self):
        graph = ShareGraph.from_placement(figure5_placement())
        cluster = Cluster(graph, seed=1)
        result = run_open_loop(cluster, OpenLoopWorkload("empty", ()))
        assert result.consistent
        assert result.makespan == 0.0
        assert result.effective_throughput == 0.0
        assert result.apply_latency.count == 0
        assert result.queue_depths == {}
        # The degenerate availability path: the clock never moved.
        availability = cluster.metrics.availability(cluster.now, graph.replica_ids)
        assert all(value == 1.0 for value in availability.values())
