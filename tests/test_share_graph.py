"""Unit tests for repro.core.share_graph."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, UnknownReplicaError
from repro.core.registers import RegisterPlacement
from repro.core.share_graph import ShareGraph, edge, reverse
from repro.sim.topologies import (
    clique_placement,
    figure3_placement,
    figure5_placement,
    path_placement,
    ring_placement,
    tree_placement,
    triangle_placement,
)


class TestEdgeHelpers:
    def test_edge_is_a_tuple(self):
        assert edge(1, 2) == (1, 2)

    def test_reverse(self):
        assert reverse((1, 2)) == (2, 1)


class TestEdges:
    def test_figure3_edges(self, figure3_graph):
        # The Figure 3 share graph is the path 1 - 2 - 3 - 4.
        expected = {(1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3)}
        assert figure3_graph.edges == expected

    def test_edges_come_in_pairs(self, any_small_graph):
        for (a, b) in any_small_graph.edges:
            assert (b, a) in any_small_graph.edges

    def test_edge_iff_shared_register(self, any_small_graph):
        graph = any_small_graph
        for a in graph.replica_ids:
            for b in graph.replica_ids:
                if a == b:
                    continue
                assert graph.has_edge(a, b) == bool(graph.shared_registers(a, b))

    def test_no_self_edges(self, any_small_graph):
        assert all(a != b for (a, b) in any_small_graph.edges)

    def test_figure5_edge_registers(self, figure5_graph):
        assert figure5_graph.edge_registers((3, 4)) == frozenset({"z"})
        assert figure5_graph.edge_registers((1, 4)) == frozenset({"y", "w"})
        assert not figure5_graph.has_edge(1, 3)

    def test_undirected_edges_half_the_directed_count(self, any_small_graph):
        assert len(any_small_graph.undirected_edges) * 2 == len(any_small_graph.edges)


class TestNeighbors:
    def test_neighbors_figure3(self, figure3_graph):
        assert figure3_graph.neighbors(1) == (2,)
        assert figure3_graph.neighbors(2) == (1, 3)
        assert figure3_graph.degree(2) == 2

    def test_neighbors_unknown_replica(self, figure3_graph):
        with pytest.raises(UnknownReplicaError):
            figure3_graph.neighbors(42)

    def test_incident_edges(self, figure3_graph):
        assert figure3_graph.incident_edges(1) == frozenset({(1, 2), (2, 1)})
        assert figure3_graph.outgoing_edges(2) == frozenset({(2, 1), (2, 3)})
        assert figure3_graph.incoming_edges(2) == frozenset({(1, 2), (3, 2)})

    def test_incident_is_union_of_in_and_out(self, any_small_graph):
        graph = any_small_graph
        for rid in graph.replica_ids:
            assert graph.incident_edges(rid) == (
                graph.incoming_edges(rid) | graph.outgoing_edges(rid)
            )


class TestStructure:
    def test_is_connected(self, any_small_graph):
        assert any_small_graph.is_connected()

    def test_disconnected_components(self):
        placement = RegisterPlacement.from_dict({1: {"a"}, 2: {"a"}, 3: {"b"}, 4: {"b"}})
        graph = ShareGraph.from_placement(placement)
        assert not graph.is_connected()
        components = graph.connected_components()
        assert frozenset({1, 2}) in components
        assert frozenset({3, 4}) in components

    def test_is_tree(self):
        assert ShareGraph.from_placement(tree_placement(7)).is_tree()
        assert ShareGraph.from_placement(path_placement(4)).is_tree()
        assert not ShareGraph.from_placement(ring_placement(5)).is_tree()

    def test_is_cycle(self):
        assert ShareGraph.from_placement(ring_placement(5)).is_cycle()
        assert not ShareGraph.from_placement(tree_placement(5)).is_cycle()
        assert ShareGraph.from_placement(triangle_placement()).is_cycle()

    def test_is_clique(self):
        assert ShareGraph.from_placement(clique_placement(4)).is_clique()
        assert not ShareGraph.from_placement(figure3_placement()).is_clique()

    def test_spanning_tree_covers_all_replicas(self, any_small_graph):
        graph = any_small_graph
        root = graph.replica_ids[0]
        parents = graph.spanning_tree(root)
        assert set(parents) == set(graph.replica_ids) - {root}
        # Every parent edge is a share-graph adjacency.
        for child, parent in parents.items():
            assert graph.has_edge(child, parent)

    def test_spanning_tree_requires_connected_graph(self):
        placement = RegisterPlacement.from_dict({1: {"a"}, 2: {"a"}, 3: {"b"}, 4: {"b"}})
        graph = ShareGraph.from_placement(placement)
        with pytest.raises(ConfigurationError):
            graph.spanning_tree(1)

    def test_to_networkx_carries_register_labels(self, figure5_graph):
        nxg = figure5_graph.to_networkx()
        assert nxg.edges[(3, 4)]["registers"] == ["z"]

    def test_contains(self, figure3_graph):
        assert (1, 2) in figure3_graph
        assert (1, 4) not in figure3_graph
        assert 3 in figure3_graph

    def test_describe_lists_adjacencies(self, figure3_graph):
        text = figure3_graph.describe()
        assert "1 <-> 2" in text and "3 <-> 4" in text


class TestCycleEnumeration:
    def test_triangle_has_cycles_through_each_replica(self, triangle_graph):
        for rid in triangle_graph.replica_ids:
            cycles = list(triangle_graph.simple_cycles_through(rid))
            # The triangle is traversed in two directions.
            assert len(cycles) == 2
            for cycle in cycles:
                assert cycle[0] == rid
                assert len(cycle) == 3

    def test_tree_has_no_cycles(self, tree7_graph):
        for rid in tree7_graph.replica_ids:
            assert list(tree7_graph.simple_cycles_through(rid)) == []

    def test_cycles_are_simple(self, figure5_graph):
        for cycle in figure5_graph.simple_cycles_through(1):
            assert len(set(cycle)) == len(cycle)

    def test_max_length_bound_respected(self, ring6_graph):
        short = list(ring6_graph.simple_cycles_through(1, max_length=5))
        assert short == []
        full = list(ring6_graph.simple_cycles_through(1, max_length=6))
        assert full and all(len(c) == 6 for c in full)

    def test_consecutive_cycle_vertices_are_adjacent(self, figure5_graph):
        for cycle in figure5_graph.simple_cycles_through(2):
            closed = list(cycle) + [cycle[0]]
            for a, b in zip(closed[:-1], closed[1:]):
                assert figure5_graph.has_edge(a, b)
