"""Unit tests for repro.core.causal and repro.core.consistency."""

from __future__ import annotations

import pytest

from repro.core.causal import (
    HappenedBefore,
    causal_past_of,
    dependency_graph_of,
)
from repro.core.consistency import (
    ConsistencyChecker,
    ConsistencyReport,
    check_execution,
)
from repro.core.errors import ConsistencyViolationError, LivenessViolationError
from repro.core.protocol import EventKind, ReplicaEvent, Update
from repro.core.share_graph import ShareGraph
from repro.sim.topologies import triangle_placement


def ev(replica, kind, update, index, register=None):
    reg = register if register is not None else (update.register if update else None)
    return ReplicaEvent(
        replica_id=replica,
        kind=kind,
        update=update,
        register=reg,
        local_index=index,
    )


@pytest.fixture
def figure2_updates():
    """The updates of the paper's Figure 2 example."""
    u1 = Update(issuer=1, seq=1, register="a", value=1)
    u2 = Update(issuer=1, seq=2, register="b", value=2)
    u3 = Update(issuer=2, seq=1, register="c", value=3)
    u4 = Update(issuer=3, seq=1, register="d", value=4)
    return u1, u2, u3, u4


@pytest.fixture
def figure2_relation(figure2_updates):
    """Traces realising the Figure 2 happened-before structure.

    r1 issues u1, u2; r2 applies u2 then issues u3; r3 issues u4 and applies u3.
    """
    u1, u2, u3, u4 = figure2_updates
    events = {
        1: [ev(1, EventKind.ISSUE, u1, 0), ev(1, EventKind.ISSUE, u2, 1)],
        2: [ev(2, EventKind.APPLY, u2, 0), ev(2, EventKind.ISSUE, u3, 1)],
        3: [ev(3, EventKind.ISSUE, u4, 0), ev(3, EventKind.APPLY, u3, 1)],
    }
    return HappenedBefore.from_events(events)


class TestHappenedBefore:
    def test_figure2_direct_relations(self, figure2_relation, figure2_updates):
        u1, u2, u3, u4 = figure2_updates
        assert figure2_relation.happened_before(u1.uid, u2.uid)
        assert figure2_relation.happened_before(u2.uid, u3.uid)

    def test_figure2_transitive_relation(self, figure2_relation, figure2_updates):
        u1, u2, u3, u4 = figure2_updates
        assert figure2_relation.happened_before(u1.uid, u3.uid)

    def test_figure2_concurrency(self, figure2_relation, figure2_updates):
        u1, u2, u3, u4 = figure2_updates
        assert figure2_relation.concurrent(u1.uid, u4.uid)
        assert figure2_relation.concurrent(u2.uid, u4.uid)

    def test_not_reflexive(self, figure2_relation, figure2_updates):
        u1 = figure2_updates[0]
        assert not figure2_relation.happened_before(u1.uid, u1.uid)
        assert not figure2_relation.concurrent(u1.uid, u1.uid)

    def test_predecessors_and_successors(self, figure2_relation, figure2_updates):
        u1, u2, u3, u4 = figure2_updates
        assert figure2_relation.predecessors(u3.uid) == {u1.uid, u2.uid}
        assert figure2_relation.successors(u1.uid) == {u2.uid, u3.uid}

    def test_from_pairs_constructor(self, figure2_updates):
        u1, u2, _, _ = figure2_updates
        relation = HappenedBefore.from_pairs([u1, u2], [(u1.uid, u2.uid)])
        assert relation.happened_before(u1.uid, u2.uid)
        assert not relation.happened_before(u2.uid, u1.uid)

    def test_all_updates_sorted(self, figure2_relation):
        uids = [u.uid for u in figure2_relation.all_updates()]
        assert uids == sorted(uids)

    def test_to_networkx_is_a_dag(self, figure2_relation):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(figure2_relation.to_networkx())


class TestCausalPast:
    def test_causal_past_includes_predecessors(self, figure2_relation, figure2_updates):
        u1, u2, u3, _ = figure2_updates
        past = causal_past_of(figure2_relation, 3, [u3.uid])
        assert past.update_ids == {u1.uid, u2.uid, u3.uid}
        assert len(past) == 3
        assert u1.uid in past

    def test_restricted_to_edge(self, figure2_relation, figure2_updates):
        u1, u2, u3, _ = figure2_updates
        past = causal_past_of(figure2_relation, 3, [u3.uid])
        only_r1_on_a = past.restricted_to_edge(figure2_relation, issuer=1, registers={"a"})
        assert only_r1_on_a == {u1.uid}

    def test_dependency_graph(self, figure2_relation, figure2_updates):
        u1, u2, u3, _ = figure2_updates
        dep = dependency_graph_of(figure2_relation, 3, [u3.uid])
        assert (u1.uid, u2.uid) in dep.edges
        assert (u1.uid, u3.uid) in dep.edges
        assert dep.causal_past.update_ids == dep.vertices


class TestConsistencyChecker:
    def make_graph(self):
        return ShareGraph.from_placement(triangle_placement())

    def test_consistent_execution_passes(self):
        graph = self.make_graph()
        uz = Update(1, 1, "z", "z1")
        ux = Update(1, 2, "x", "x1")
        uy = Update(2, 1, "y", "y1")
        events = {
            1: [ev(1, EventKind.ISSUE, uz, 0), ev(1, EventKind.ISSUE, ux, 1)],
            2: [ev(2, EventKind.APPLY, ux, 0), ev(2, EventKind.ISSUE, uy, 1)],
            3: [ev(3, EventKind.APPLY, uz, 0), ev(3, EventKind.APPLY, uy, 1)],
        }
        report = check_execution(graph, events)
        assert report.is_causally_consistent
        assert report.checked_updates == 3
        report.raise_on_violation()  # must not raise

    def test_safety_violation_detected(self):
        graph = self.make_graph()
        uz = Update(1, 1, "z", "z1")
        ux = Update(1, 2, "x", "x1")
        uy = Update(2, 1, "y", "y1")
        events = {
            1: [ev(1, EventKind.ISSUE, uz, 0), ev(1, EventKind.ISSUE, ux, 1)],
            2: [ev(2, EventKind.APPLY, ux, 0), ev(2, EventKind.ISSUE, uy, 1)],
            # Replica 3 applies y BEFORE z although z happened-before y and z ∈ X_3.
            3: [ev(3, EventKind.APPLY, uy, 0), ev(3, EventKind.APPLY, uz, 1)],
        }
        report = check_execution(graph, events)
        assert not report.is_safe
        assert len(report.safety_violations) == 1
        violation = report.safety_violations[0]
        assert violation.replica_id == 3
        assert violation.applied.uid == uy.uid
        assert violation.missing.uid == uz.uid
        with pytest.raises(ConsistencyViolationError):
            report.raise_on_violation()

    def test_dependency_on_unstored_register_is_exempt(self):
        graph = self.make_graph()
        # x is not stored at replica 3, so applying y before (never applying) x is fine.
        ux = Update(1, 1, "x", "x1")
        uy = Update(2, 1, "y", "y1")
        events = {
            1: [ev(1, EventKind.ISSUE, ux, 0)],
            2: [ev(2, EventKind.APPLY, ux, 0), ev(2, EventKind.ISSUE, uy, 1)],
            3: [ev(3, EventKind.APPLY, uy, 0)],
        }
        report = check_execution(graph, events)
        assert report.is_safe

    def test_liveness_violation_detected(self):
        graph = self.make_graph()
        ux = Update(1, 1, "x", "x1")
        events = {
            1: [ev(1, EventKind.ISSUE, ux, 0)],
            2: [],  # replica 2 stores x but never applies the update
            3: [],
        }
        report = check_execution(graph, events)
        assert not report.is_live
        assert any(v.replica_id == 2 for v in report.liveness_violations)
        with pytest.raises(LivenessViolationError):
            report.raise_on_violation()

    def test_liveness_check_can_be_skipped(self):
        graph = self.make_graph()
        ux = Update(1, 1, "x", "x1")
        events = {1: [ev(1, EventKind.ISSUE, ux, 0)], 2: [], 3: []}
        report = check_execution(graph, events, check_liveness=False)
        assert report.is_live

    def test_extra_happened_before_edges(self):
        # Two updates at unrelated replicas become ordered only via an
        # injected client edge; the checker must then flag the reordering.
        graph = self.make_graph()
        uz = Update(1, 1, "z", "z1")
        uy = Update(2, 1, "y", "y1")
        events = {
            1: [ev(1, EventKind.ISSUE, uz, 0)],
            2: [ev(2, EventKind.ISSUE, uy, 0)],
            3: [ev(3, EventKind.APPLY, uy, 0), ev(3, EventKind.APPLY, uz, 1)],
        }
        without = ConsistencyChecker(graph).check(events)
        assert without.is_safe
        with_edge = ConsistencyChecker(graph).check(
            events, extra_happened_before=[(uz.uid, uy.uid)]
        )
        assert not with_edge.is_safe

    def test_report_summary(self):
        report = ConsistencyReport()
        assert "0 safety" in report.summary()
