"""Unit tests for repro.sim.topologies — placement generators."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import timestamp_edges
from repro.sim.topologies import (
    COUNTEREXAMPLE_IDS,
    clique_placement,
    counterexample1_placement,
    counterexample2_placement,
    figure3_placement,
    figure5_placement,
    geo_replication_placement,
    grid_placement,
    pairwise_clique_placement,
    path_placement,
    random_partial_placement,
    ring_placement,
    star_placement,
    tree_placement,
    triangle_placement,
)


class TestPaperExamples:
    def test_figure3_matches_paper(self):
        placement = figure3_placement()
        assert placement.registers_at(1) == {"x"}
        assert placement.registers_at(2) == {"x", "y"}
        assert placement.registers_at(3) == {"y", "z"}
        assert placement.registers_at(4) == {"z"}

    def test_figure5_matches_paper(self):
        placement = figure5_placement()
        assert placement.registers_at(1) == {"a", "y", "w"}
        assert placement.registers_at(4) == {"d", "y", "z", "w"}
        graph = ShareGraph.from_placement(placement)
        assert graph.shared_registers(3, 4) == {"z"}
        assert not graph.has_edge(1, 3)

    def test_counterexample1_structure(self):
        graph = ShareGraph.from_placement(counterexample1_placement())
        ids = COUNTEREXAMPLE_IDS
        # j and k share x and nothing else connects them to the i-side directly.
        assert graph.shared_registers(ids["j"], ids["k"]) == {"x"}
        assert graph.shared_registers(ids["b1"], ids["b2"]) == {"y"}
        assert graph.shared_registers(ids["a1"], ids["a2"]) == {"z"}
        # The y / z chords that defeat the minimal-hoop criterion exist.
        assert graph.has_edge(ids["b1"], ids["a1"])
        assert graph.has_edge(ids["b2"], ids["a2"])
        assert graph.has_edge(ids["b2"], ids["a1"])

    def test_counterexample2_structure(self):
        graph = ShareGraph.from_placement(counterexample2_placement())
        ids = COUNTEREXAMPLE_IDS
        assert graph.shared_registers(ids["j"], ids["k"]) == {"x"}
        assert graph.shared_registers(ids["b1"], ids["b2"]) == {"y"}
        # Only the y register is shared three ways here (no z chord).
        assert not graph.has_edge(ids["b2"], ids["a2"])

    def test_counterexample_graphs_connected(self):
        for placement in (counterexample1_placement(), counterexample2_placement()):
            assert ShareGraph.from_placement(placement).is_connected()

    def test_triangle_every_pair_shares_exactly_one(self):
        graph = ShareGraph.from_placement(triangle_placement())
        for a in (1, 2, 3):
            for b in (1, 2, 3):
                if a != b:
                    assert len(graph.shared_registers(a, b)) == 1


class TestFamilies:
    @pytest.mark.parametrize("n", [3, 4, 6, 9])
    def test_ring_structure(self, n):
        graph = ShareGraph.from_placement(ring_placement(n))
        assert graph.num_replicas == n
        assert graph.is_cycle()
        assert all(graph.degree(r) == 2 for r in graph.replica_ids)

    def test_ring_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_placement(2)

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_path_structure(self, n):
        graph = ShareGraph.from_placement(path_placement(n))
        assert graph.is_tree()
        assert graph.degree(1) == 1

    def test_star_structure(self):
        graph = ShareGraph.from_placement(star_placement(5))
        assert graph.degree(1) == 5
        assert all(graph.degree(leaf) == 1 for leaf in range(2, 7))

    @pytest.mark.parametrize("n,branching", [(7, 2), (10, 3), (5, 1)])
    def test_tree_structure(self, n, branching):
        graph = ShareGraph.from_placement(tree_placement(n, branching=branching))
        assert graph.num_replicas == n
        assert graph.is_tree()

    def test_tree_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            tree_placement(1)
        with pytest.raises(ConfigurationError):
            tree_placement(5, branching=0)

    def test_clique_is_fully_replicated(self):
        placement = clique_placement(5)
        assert placement.is_fully_replicated()
        assert ShareGraph.from_placement(placement).is_clique()

    def test_pairwise_clique_unique_registers(self):
        placement = pairwise_clique_placement(4)
        graph = ShareGraph.from_placement(placement)
        assert graph.is_clique()
        for a in graph.replica_ids:
            for b in graph.replica_ids:
                if a != b:
                    assert len(graph.shared_registers(a, b)) == 1

    def test_grid_structure(self):
        graph = ShareGraph.from_placement(grid_placement(3, 3))
        assert graph.num_replicas == 9
        corner_degrees = [graph.degree(1), graph.degree(3), graph.degree(7), graph.degree(9)]
        assert all(d == 2 for d in corner_degrees)
        assert graph.degree(5) == 4  # the centre

    def test_grid_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            grid_placement(0, 3)

    def test_random_partial_connected_and_replicated(self):
        placement = random_partial_placement(8, 15, replication_factor=3, seed=9)
        graph = ShareGraph.from_placement(placement)
        assert graph.is_connected()
        for idx in range(15):
            assert placement.replication_factor(f"r{idx}") == 3

    def test_random_partial_determinism(self):
        a = random_partial_placement(6, 10, seed=5)
        b = random_partial_placement(6, 10, seed=5)
        assert a == b

    def test_random_partial_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            random_partial_placement(4, 5, replication_factor=9)

    def test_geo_replication_structure(self):
        placement = geo_replication_placement(3, shards_per_dc=2, global_registers=1)
        graph = ShareGraph.from_placement(placement)
        assert graph.is_connected()
        # Every datacenter stores the global register.
        assert placement.replication_factor("global_0") == 3

    def test_geo_replication_rejects_single_dc(self):
        with pytest.raises(ConfigurationError):
            geo_replication_placement(1)


class TestClosedFormSizes:
    """The metadata sizes the paper quotes for the canonical families."""

    @pytest.mark.parametrize("n", [4, 5, 6, 8])
    def test_ring_timestamps_have_2n_counters(self, n):
        graph = ShareGraph.from_placement(ring_placement(n))
        for rid in graph.replica_ids:
            assert len(timestamp_edges(graph, rid)) == 2 * n

    @pytest.mark.parametrize("n", [5, 7, 10])
    def test_tree_timestamps_have_2Ni_counters(self, n):
        graph = ShareGraph.from_placement(tree_placement(n))
        for rid in graph.replica_ids:
            assert len(timestamp_edges(graph, rid)) == 2 * graph.degree(rid)

    def test_star_leaves_track_two_counters(self):
        graph = ShareGraph.from_placement(star_placement(6))
        for leaf in range(2, 8):
            assert len(timestamp_edges(graph, leaf)) == 2
