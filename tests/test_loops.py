"""Unit tests for repro.core.loops — the (i, e_jk)-loop machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loops import (
    Loop,
    _loops_from_cycle,
    check_loop_conditions,
    find_loop,
    has_loop,
    iter_loops,
    loop_edges,
    loops_by_edge,
)
from repro.core.registers import RegisterPlacement
from repro.core.share_graph import ShareGraph
from repro.sim.topologies import (
    figure5_placement,
    ring_placement,
    tree_placement,
    triangle_placement,
)


class TestPaperExamples:
    """The worked examples of Section 3 (Figure 5)."""

    def test_1_2_3_4_is_a_1_e43_loop(self, figure5_graph):
        # The paper: (1, 2, 3, 4) is a (1, e_43)-loop.
        assert check_loop_conditions(
            figure5_graph, observer=1, jk=(4, 3), l_side=(2, 3), r_side=(4,)
        )

    def test_1_2_3_4_is_a_1_e32_loop(self, figure5_graph):
        # The paper: (1, 2, 3, 4) is a (1, e_32)-loop.
        assert check_loop_conditions(
            figure5_graph, observer=1, jk=(3, 2), l_side=(2,), r_side=(3, 4)
        )

    def test_1_4_3_2_is_not_a_1_e34_loop(self, figure5_graph):
        # The paper: (1, 4, 3, 2) is not a (1, e_34)-loop (condition iii fails,
        # because X_21 - X_4 is empty).
        assert not check_loop_conditions(
            figure5_graph, observer=1, jk=(3, 4), l_side=(4,), r_side=(3, 2)
        )

    def test_1_4_3_2_is_not_a_1_e23_loop(self, figure5_graph):
        assert not check_loop_conditions(
            figure5_graph, observer=1, jk=(2, 3), l_side=(4, 3), r_side=(2,)
        )

    def test_has_loop_matches_paper_for_replica1(self, figure5_graph):
        assert has_loop(figure5_graph, 1, (4, 3))
        assert has_loop(figure5_graph, 1, (3, 2))
        assert not has_loop(figure5_graph, 1, (3, 4))
        assert not has_loop(figure5_graph, 1, (2, 3))

    def test_loop_edges_for_replica1(self, figure5_graph):
        edges = loop_edges(figure5_graph, 1)
        assert (4, 3) in edges
        assert (3, 2) in edges
        assert (3, 4) not in edges
        assert (2, 3) not in edges


class TestLoopObject:
    def test_loop_properties(self, figure5_graph):
        loop = find_loop(figure5_graph, 1, (4, 3))
        assert loop is not None
        assert loop.observer == 1
        assert loop.j == 4 and loop.k == 3
        assert loop.vertices[0] == 1
        assert loop.length == len(loop.vertices)
        assert "e_43" in str(loop)

    def test_find_loop_returns_none_when_absent(self, figure5_graph):
        assert find_loop(figure5_graph, 1, (3, 4)) is None

    def test_loops_by_edge_groups_consistently(self, figure5_graph):
        grouped = loops_by_edge(figure5_graph, 1)
        for e, loops in grouped.items():
            assert loops
            for loop in loops:
                assert loop.edge == e


class TestEdgeCases:
    def test_no_loops_in_trees(self, tree7_graph):
        for rid in tree7_graph.replica_ids:
            assert loop_edges(tree7_graph, rid) == frozenset()

    def test_triangle_every_remote_edge_has_a_loop(self, triangle_graph):
        # In the triangle each replica witnesses both orientations of the
        # opposite edge.
        assert loop_edges(triangle_graph, 1) == frozenset({(2, 3), (3, 2)})
        assert loop_edges(triangle_graph, 2) == frozenset({(1, 3), (3, 1)})
        assert loop_edges(triangle_graph, 3) == frozenset({(1, 2), (2, 1)})

    def test_ring_every_remote_edge_has_a_loop(self, ring6_graph):
        edges = loop_edges(ring6_graph, 1)
        remote = {e for e in ring6_graph.edges if 1 not in e}
        assert edges == remote

    def test_has_loop_rejects_incident_edges(self, triangle_graph):
        assert not has_loop(triangle_graph, 1, (1, 2))
        assert not has_loop(triangle_graph, 1, (2, 1))

    def test_has_loop_rejects_non_edges(self, figure5_graph):
        assert not has_loop(figure5_graph, 2, (1, 3))

    def test_max_loop_length_filters_long_loops(self):
        graph = ShareGraph.from_placement(ring_placement(6))
        # The only loops in a 6-ring have 6 vertices.
        assert loop_edges(graph, 1, max_loop_length=5) == frozenset()
        assert loop_edges(graph, 1, max_loop_length=6) != frozenset()

    def test_iter_loops_with_target_edge_only_yields_that_edge(self, figure5_graph):
        for loop in iter_loops(figure5_graph, 1, target_edge=(4, 3)):
            assert loop.edge == (4, 3)

    def test_check_loop_conditions_rejects_malformed_sides(self, figure5_graph):
        assert not check_loop_conditions(figure5_graph, 1, (4, 3), (), (4,))
        assert not check_loop_conditions(figure5_graph, 1, (4, 3), (2, 3), ())
        # l_side must end with k and r_side must start with j.
        assert not check_loop_conditions(figure5_graph, 1, (4, 3), (2,), (4,))


# ----------------------------------------------------------------------
# Fast split enumeration vs the Definition 4 reference
# ----------------------------------------------------------------------

def _random_share_graph(draw):
    """A small random share graph: registers placed on 2–3 owners each."""
    num_replicas = draw(st.integers(min_value=3, max_value=7))
    num_registers = draw(st.integers(min_value=num_replicas - 1,
                                     max_value=num_replicas + 3))
    stores = {rid: set() for rid in range(1, num_replicas + 1)}
    for index in range(num_registers):
        owners = draw(
            st.sets(
                st.integers(min_value=1, max_value=num_replicas),
                min_size=2, max_size=min(3, num_replicas),
            )
        )
        for owner in owners:
            stores[owner].add(f"x{index}")
    stores = {rid: frozenset(regs) for rid, regs in stores.items() if regs}
    return ShareGraph.from_placement(RegisterPlacement(stores))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_loops_from_cycle_matches_definition4_reference(data):
    """The O(1)-per-split enumeration inside :func:`_loops_from_cycle` is
    exactly equivalent to evaluating :func:`check_loop_conditions` at every
    split point of every oriented cycle — same loops, same order."""
    try:
        graph = _random_share_graph(data.draw)
    except Exception:
        return  # degenerate placement (e.g. a replica storing nothing)
    for observer in graph.replica_ids:
        for cycle in graph.simple_cycles_through(observer):
            fast = [
                (loop.edge, loop.l_side, loop.r_side)
                for loop in _loops_from_cycle(graph, observer, cycle)
            ]
            reference = []
            for m in range(1, len(cycle) - 1):
                jk = (cycle[m + 1], cycle[m])
                if jk not in graph.edges:
                    continue
                l_side = tuple(cycle[1:m + 1])
                r_side = tuple(cycle[m + 1:])
                if check_loop_conditions(graph, observer, jk, l_side, r_side):
                    reference.append((jk, l_side, r_side))
            assert fast == reference
