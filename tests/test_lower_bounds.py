"""Unit tests for repro.lower_bounds — Definition 13, Theorem 15 and the closed forms."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.core.protocol import Update
from repro.core.share_graph import ShareGraph
from repro.lower_bounds import (
    ConflictGraph,
    algorithm_bits,
    algorithm_counters,
    canonical_causal_pasts,
    clique_lower_bound_bits,
    conflicts,
    cycle_lower_bound_bits,
    full_replication_space_size,
    lower_bound_bits,
    restrict_to_edge,
    timestamp_space_lower_bound,
    tree_lower_bound_bits,
)
from repro.lower_bounds.closed_form import tightness_table
from repro.sim.topologies import (
    clique_placement,
    figure5_placement,
    path_placement,
    ring_placement,
    star_placement,
    tree_placement,
    triangle_placement,
)


def u(issuer, seq, register):
    return Update(issuer=issuer, seq=seq, register=register, value=seq)


class TestRestriction:
    def test_restrict_to_edge(self, triangle_graph):
        past = {u(1, 1, "x"), u(1, 2, "z"), u(2, 1, "x")}
        # Edge (1, 2) is labelled {x}: only replica 1's update on x qualifies.
        assert restrict_to_edge(triangle_graph, past, (1, 2)) == {u(1, 1, "x")}
        # Edge (1, 3) is labelled {z}.
        assert restrict_to_edge(triangle_graph, past, (1, 3)) == {u(1, 2, "z")}

    def test_restrict_to_non_edge_is_empty(self, figure5_graph):
        past = {u(1, 1, "a")}
        assert restrict_to_edge(figure5_graph, past, (1, 3)) == frozenset()


class TestConflictRelation:
    def make_pasts(self, graph, counts_a, counts_b):
        """Build two nested canonical pasts with per-edge counts."""
        def build(counts):
            past = set()
            for (j, k), c in counts.items():
                register = sorted(graph.shared_registers(j, k))[0]
                for seq in range(1, c + 1):
                    past.add(u(j, seq, register))
            return past

        return build(counts_a), build(counts_b)

    def test_conflict_on_incident_edge(self, triangle_graph):
        base = {e: 1 for e in triangle_graph.edges}
        more = dict(base)
        more[(2, 1)] = 2  # an incoming edge of replica 1 differs
        s1, s2 = self.make_pasts(triangle_graph, base, more)
        assert conflicts(triangle_graph, 1, s1, s2)
        assert conflicts(triangle_graph, 1, s2, s1)  # symmetric

    def test_conflict_on_loop_edge(self, triangle_graph):
        base = {e: 1 for e in triangle_graph.edges}
        more = dict(base)
        more[(2, 3)] = 2  # a remote edge witnessed by a (1, e_23)-loop
        s1, s2 = self.make_pasts(triangle_graph, base, more)
        assert conflicts(triangle_graph, 1, s1, s2)

    def test_no_conflict_when_an_edge_is_empty(self, triangle_graph):
        base = {e: 1 for e in triangle_graph.edges}
        missing = dict(base)
        missing[(3, 2)] = 0  # condition 1 requires every edge non-empty
        more = dict(base)
        more[(2, 1)] = 2
        s1, s2 = self.make_pasts(triangle_graph, missing, more)
        assert not conflicts(triangle_graph, 1, s1, s2)

    def test_identical_pasts_do_not_conflict(self, triangle_graph):
        base = {e: 1 for e in triangle_graph.edges}
        s1, s2 = self.make_pasts(triangle_graph, base, base)
        assert not conflicts(triangle_graph, 1, s1, s2)

    def test_no_conflict_on_unrelated_remote_edge_of_a_path(self):
        # On a path (no loops), replica 1 need not distinguish pasts that
        # differ only in updates on the far-away edge (3, 4).
        graph = ShareGraph.from_placement(path_placement(4))
        base = {e: 1 for e in graph.edges}
        more = dict(base)
        more[(3, 4)] = 2
        def build(counts):
            past = set()
            for (j, k), c in counts.items():
                register = sorted(graph.shared_registers(j, k))[0]
                for seq in range(1, c + 1):
                    past.add(u(j, seq, register))
            return past
        assert not conflicts(graph, 1, build(base), build(more))


class TestCanonicalFamilyAndConflictGraph:
    def test_family_size(self, triangle_graph):
        pasts = canonical_causal_pasts(triangle_graph, 1, max_updates=2)
        assert len(pasts) == 2 ** len(triangle_graph.edges)

    def test_family_requires_pairwise_registers(self):
        graph = ShareGraph.from_placement(clique_placement(3))
        with pytest.raises(ConfigurationError):
            canonical_causal_pasts(graph, 1, max_updates=2)

    def test_conflict_graph_ring3_is_complete(self, triangle_graph):
        pasts = canonical_causal_pasts(triangle_graph, 1, max_updates=2)
        conflict_graph = ConflictGraph.build(triangle_graph, 1, pasts)
        assert conflict_graph.num_pasts == 64
        assert conflict_graph.is_complete()
        assert conflict_graph.clique_lower_bound() == 64
        assert conflict_graph.chromatic_upper_bound() == 64

    def test_timestamp_space_lower_bound_matches_closed_form(self, triangle_graph):
        size, bits = timestamp_space_lower_bound(triangle_graph, 1, max_updates=2)
        assert size == 2 ** 6
        assert bits == pytest.approx(cycle_lower_bound_bits(3, 2))

    def test_path_bound_counts_only_incident_edges(self):
        graph = ShareGraph.from_placement(path_placement(3))
        # Replica 1 has two incident edges; restricting the family to them
        # yields the tree bound 2 * N_1 * log m = 2 * 1 * 1 = 2 bits for m=2.
        size, bits = timestamp_space_lower_bound(
            graph, 1, max_updates=2, edges=graph.incident_edges(1)
        )
        assert size == 4
        assert bits == pytest.approx(2 * graph.degree(1) * math.log2(2))


class TestClosedForms:
    def test_tree_bound(self):
        graph = ShareGraph.from_placement(tree_placement(7))
        assert tree_lower_bound_bits(graph, 1, 16) == pytest.approx(2 * 2 * 4.0)
        assert tree_lower_bound_bits(graph, 4, 16) == pytest.approx(2 * 1 * 4.0)

    def test_tree_bound_rejects_non_tree(self):
        graph = ShareGraph.from_placement(ring_placement(4))
        with pytest.raises(ConfigurationError):
            tree_lower_bound_bits(graph, 1, 4)

    def test_cycle_bound(self):
        assert cycle_lower_bound_bits(6, 16) == pytest.approx(48.0)
        with pytest.raises(ConfigurationError):
            cycle_lower_bound_bits(2, 16)

    def test_full_replication_space(self):
        assert full_replication_space_size(3, 4) == 64
        assert clique_lower_bound_bits(3, 4) == pytest.approx(6.0)

    def test_m_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            cycle_lower_bound_bits(4, 1)

    def test_algorithm_matches_tree_bound(self):
        graph = ShareGraph.from_placement(tree_placement(7))
        for rid in graph.replica_ids:
            assert algorithm_bits(graph, rid, 16) == pytest.approx(
                tree_lower_bound_bits(graph, rid, 16)
            )

    def test_algorithm_matches_cycle_bound(self):
        for n in (4, 5, 6):
            graph = ShareGraph.from_placement(ring_placement(n))
            assert algorithm_bits(graph, 1, 8) == pytest.approx(
                cycle_lower_bound_bits(n, 8)
            )
            assert algorithm_counters(graph, 1) == 2 * n

    def test_lower_bound_bits_dispatch(self):
        tree = ShareGraph.from_placement(star_placement(4))
        ring = ShareGraph.from_placement(ring_placement(5))
        clique = ShareGraph.from_placement(clique_placement(4))
        other = ShareGraph.from_placement(figure5_placement())
        assert lower_bound_bits(tree, 1, 4) == pytest.approx(2 * 4 * 2.0)
        assert lower_bound_bits(ring, 1, 4) == pytest.approx(2 * 5 * 2.0)
        assert lower_bound_bits(clique, 1, 4) == pytest.approx(4 * 2.0)
        assert lower_bound_bits(other, 1, 4) is None

    def test_tightness_table(self):
        graph = ShareGraph.from_placement(tree_placement(5))
        table = tightness_table(graph, 8)
        for rid, row in table.items():
            assert row["lower_bound_bits"] == pytest.approx(row["algorithm_bits"])
