"""Tests for dynamic membership (repro.sim.reconfig).

Covers the acceptance scenarios: a 64-replica open-loop run adding 8
replicas and removing 4 mid-run stays causally consistent on both
architectures; availability dips only inside migration windows; epoch
migration edge cases (reconfig during an open partition, joiner crash
mid-state-transfer, back-to-back reconfigs); same-seed determinism of a
run containing a full reconfiguration schedule; and the wire-level epoch
machinery (epoch tags, stale-frame rejection, the membership codec, the
bootstrap stream gate).
"""

from __future__ import annotations

import pytest

from repro.clientserver import ClientServerCluster
from repro.core.errors import ReconfigurationError
from repro.core.protocol import BootstrapMetadata, Update, UpdateMessage
from repro.core.registers import RegisterPlacement
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.core.timestamps import EdgeTimestamp
from repro.sim.cluster import Cluster
from repro.sim.delays import FixedDelay, LossyDelay, UniformDelay
from repro.sim.faults import FaultInjector, FaultSchedule, crash, heal, partition, restart
from repro.sim.reconfig import (
    ReconfigManager,
    ReconfigSchedule,
    add_edge,
    apply_action,
    join,
    leave,
    membership_change_of,
    random_churn_schedule,
    remove_edge,
)
from repro.sim.topologies import figure5_placement, tree_placement
from repro.sim.workloads import Operation, poisson_workload_dynamic, run_open_loop
from repro.topo import LatencyDelayModel, TopologyError, geo_regions
from repro.wire.membership import decode_membership_change, encode_membership_change


def path_placement_small() -> RegisterPlacement:
    """The Figure 3 path: 1-{x}-2-{y}-3-{z}-4."""
    return RegisterPlacement.from_dict(
        {1: {"x"}, 2: {"x", "y"}, 3: {"y", "z"}, 4: {"z"}}
    )


def churned_run(architecture: str, placement, schedule, *, window=3.0,
                rate=0.4, duration=150.0, seed=7, delay=None):
    """Build a host, attach a manager, install a schedule, run open-loop."""
    graph = ShareGraph.from_placement(placement)
    delay = delay or UniformDelay(1, 10)
    if architecture == "peer-to-peer":
        host = Cluster(graph, delay_model=delay, seed=seed)
    else:
        host = ClientServerCluster.with_colocated_clients(
            graph, delay_model=delay, seed=seed
        )
    manager = ReconfigManager(host, window=window)
    manager.install(schedule)
    placements = schedule.placements_over(placement, window=window)
    workload = poisson_workload_dynamic(
        placements, rate=rate, duration=duration, seed=seed
    )
    result = run_open_loop(host, workload)
    return host, manager, result


# ======================================================================
# Action algebra and placement derivation
# ======================================================================

class TestActions:
    def test_join_adds_replica_with_grants(self):
        placement = path_placement_small()
        action = join(10.0, 5, {"link"}, grants={4: {"link"}})
        new = apply_action(placement, action)
        assert new.registers_at(5) == {"link"}
        assert "link" in new.registers_at(4)
        graph = ShareGraph.from_placement(new)
        assert graph.has_edge(4, 5)

    def test_join_existing_id_rejected(self):
        with pytest.raises(Exception):
            apply_action(path_placement_small(), join(1.0, 2, {"q"}))

    def test_leave_removes_replica(self):
        new = apply_action(path_placement_small(), leave(1.0, 4))
        assert 4 not in new.replica_ids
        # z survives at replica 3 (single-owner local state).
        assert new.stores_register(3, "z")

    def test_remove_edge_drops_shared_registers_from_second_endpoint(self):
        new = apply_action(path_placement_small(), remove_edge(1.0, 2, 3))
        assert not new.shared_registers(2, 3)
        assert new.stores_register(2, "y")
        assert not new.stores_register(3, "y")

    def test_remove_missing_edge_rejected(self):
        with pytest.raises(ReconfigurationError):
            apply_action(path_placement_small(), remove_edge(1.0, 1, 4))

    def test_add_edge_places_register_at_both(self):
        new = apply_action(path_placement_small(), add_edge(1.0, 1, 4))
        assert ShareGraph.from_placement(new).has_edge(1, 4)

    def test_membership_change_roundtrips_on_the_wire(self):
        old = path_placement_small()
        new = apply_action(old, join(1.0, 5, {"x", "w"}))
        change = membership_change_of(old, new, epoch=3)
        decoded, _ = decode_membership_change(encode_membership_change(change))
        assert decoded == change
        assert decoded.joins == {5: frozenset({"x", "w"})}

    def test_placements_over_timeline(self):
        placement = path_placement_small()
        schedule = ReconfigSchedule(
            "t", (leave(20.0, 4), join(10.0, 5, {"x"}))
        )
        timeline = schedule.placements_over(placement, window=2.0)
        # Actions are sorted by time; effective times include the window.
        assert [t for t, _ in timeline] == [0.0, 12.0, 22.0]
        assert 5 in timeline[1][1].replica_ids
        assert 4 not in timeline[2][1].replica_ids


# ======================================================================
# Timestamp projection and the bootstrap gate
# ======================================================================

class TestMigrationPrimitives:
    def test_edge_timestamp_migrated_projects_and_widens(self):
        ts = EdgeTimestamp({(1, 2): 4, (2, 1): 7, (2, 3): 1})
        migrated = ts.migrated([(1, 2), (2, 1), (9, 1)])
        assert migrated[(1, 2)] == 4
        assert migrated[(2, 1)] == 7
        assert migrated[(9, 1)] == 0
        assert (2, 3) not in migrated

    def test_replica_migrate_preserves_surviving_counters(self):
        placement = path_placement_small()
        graph = ShareGraph.from_placement(placement)
        replica = EdgeIndexedReplica(graph, 2)
        replica.write("x", 1)
        replica.write("y", 2)
        old = dict(replica.timestamp.counters)
        new_placement = apply_action(placement, join(0.0, 5, {"y"}))
        new_graph = ShareGraph.from_placement(new_placement)
        replica.migrate(new_graph, epoch=1)
        assert replica.epoch == 1
        for edge, value in replica.timestamp.items():
            if edge in old:
                assert value == old[edge]
            else:
                assert value == 0

    def test_unsupported_family_refuses_migration(self):
        from repro.baselines.full_track import FullTrackReplica

        graph = ShareGraph.from_placement(path_placement_small())
        replica = FullTrackReplica(graph, 1)
        with pytest.raises(ReconfigurationError):
            replica.migrate(graph, epoch=1)

    def test_bootstrap_stream_applies_in_order_and_gates_normal_traffic(self):
        graph = ShareGraph.from_placement(path_placement_small())
        replica = EdgeIndexedReplica(graph, 2)
        peer = EdgeIndexedReplica(graph, 1)
        normal = peer.write("x", "live")[0]
        replica.begin_bootstrap(2)
        assert replica.bootstrapping
        boot = [
            UpdateMessage(
                update=Update(3, i + 1, "y", f"old{i}"),
                sender=3, destination=2,
                metadata=BootstrapMetadata(index=i, total=2),
                metadata_size=0,
            )
            for i in range(2)
        ]
        # Normal traffic and the out-of-order tail arrive first: all parked.
        replica.receive(normal)
        replica.receive(boot[1])
        assert replica.apply_ready() == []
        # The stream head unblocks everything in order, then lifts the gate.
        replica.receive(boot[0])
        applied = replica.apply_ready()
        assert [u.value for u in applied] == ["old0", "old1", "live"]
        assert not replica.bootstrapping
        assert replica.store["y"] == "old1"

    def test_begin_bootstrap_rejects_nested_streams(self):
        graph = ShareGraph.from_placement(path_placement_small())
        replica = EdgeIndexedReplica(graph, 2)
        replica.begin_bootstrap(1)
        with pytest.raises(Exception):
            replica.begin_bootstrap(1)


# ======================================================================
# Wire-level epoch machinery
# ======================================================================

class TestEpochWire:
    def test_frame_header_carries_epoch(self):
        message = UpdateMessage(
            update=Update(1, 1, "x", "v"), sender=1, destination=2,
            metadata=EdgeTimestamp({(1, 2): 1}), metadata_size=1, epoch=5,
        )
        decoded = UpdateMessage.from_wire(message.to_wire())
        assert decoded.epoch == 5
        assert decoded.update == message.update

    def test_bootstrap_metadata_roundtrips(self):
        message = UpdateMessage(
            update=Update(1, 1, "x", "v"), sender=1, destination=2,
            metadata=BootstrapMetadata(index=3, total=9, epoch=2),
            metadata_size=0, epoch=2,
        )
        decoded = UpdateMessage.from_wire(message.to_wire())
        assert decoded.metadata == BootstrapMetadata(index=3, total=9, epoch=2)

    def test_stale_epoch_frame_rejected_cleanly(self):
        graph = ShareGraph.from_placement(path_placement_small())
        cluster = Cluster(graph, delay_model=FixedDelay(1.0), seed=0)
        ReconfigManager(cluster, window=1.0)
        stale = UpdateMessage(
            update=Update(1, 1, "x", "v"), sender=1, destination=2,
            metadata=EdgeTimestamp({(1, 2): 1}), metadata_size=1, epoch=7,
        )
        cluster.network.send(stale)
        cluster.run_until_quiescent()
        assert cluster.network.stats.messages_rejected_stale_epoch == 1
        assert not cluster.replica(2).has_applied((1, 1))


# ======================================================================
# End-to-end reconfiguration on both architectures
# ======================================================================

ARCHITECTURES = ("peer-to-peer", "client-server")


class TestReconfigurationRuns:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_join_leave_edge_change_stays_consistent(self, architecture):
        placement = figure5_placement()
        schedule = ReconfigSchedule(
            "mixed",
            (
                join(40.0, 5, {"y", "extra5"}),     # joins y's group: transfer
                leave(80.0, 5),
                add_edge(110.0, 1, 3, register="y"),  # 3 gains y: transfer
                remove_edge(140.0, 1, 3),
            ),
        )
        host, manager, result = churned_run(
            architecture, placement, schedule, duration=200.0
        )
        assert result.consistent
        assert host.metrics.reconfigs == 4
        assert host.epoch == 4
        assert not manager.warming_replicas()
        # The joiner received y's pre-join history before it left again,
        # and replica 3 received it when the edge appeared.
        assert any(
            record.kind == "transfer-complete"
            for record in host.metrics.reconfig_timeline
        )
        assert host.network.stats.messages_rejected_stale_epoch == 0

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_metadata_steps_to_new_configuration(self, architecture):
        placement = tree_placement(6)
        schedule = ReconfigSchedule(
            "grow", (join(50.0, 7, {"tree_2_5"}),)
        )
        host, manager, result = churned_run(
            architecture, placement, schedule, duration=120.0
        )
        assert result.consistent
        # Every member's counter count equals |E_i| of the *new* graph.
        from repro.clientserver.augmented import augmented_timestamp_edges
        from repro.core.timestamp_graph import timestamp_edges

        for rid, size in host.metadata_sizes().items():
            if architecture == "peer-to-peer":
                expected = len(timestamp_edges(host.share_graph, rid))
            else:
                expected = len(augmented_timestamp_edges(host.augmented, rid))
            assert size == expected

    def test_availability_dips_only_in_migration_windows(self):
        placement = tree_placement(8)
        schedule = ReconfigSchedule(
            "churn",
            (
                leave(50.0, 8),
                add_edge(90.0, 2, 5, register="tree_1_2"),
            ),
        )
        host, manager, result = churned_run(
            "peer-to-peer", placement, schedule, duration=160.0
        )
        assert result.consistent
        windows = list(host.metrics.migration_windows)
        transfers = [
            record.time
            for record in host.metrics.reconfig_timeline
            if record.kind == "transfer-start"
        ]
        for replica_id, intervals in host.metrics.downtime.items():
            for down_at, up_at in intervals:
                in_window = any(s <= down_at and up_at <= e for s, e in windows)
                in_transfer = any(abs(down_at - t) < 1e-9 for t in transfers)
                assert in_window or in_transfer
        # Rejections happened only because of the reconfiguration.
        assert host.metrics.crashes == 0

    def test_session_handoff_when_server_leaves(self):
        placement = tree_placement(5)
        schedule = ReconfigSchedule("handoff", (leave(40.0, 5),))
        host, manager, result = churned_run(
            "client-server", placement, schedule, duration=100.0
        )
        assert result.consistent
        client = host.clients["c5"]
        # The leaver's pinned client was re-homed to a surviving replica.
        assert client.replica_set == frozenset({min(host.servers)})

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_acceptance_64_replicas_8_joins_4_leaves(self, architecture):
        placement = tree_placement(64)
        schedule = random_churn_schedule(
            placement, 300.0, joins=8, leaves=4, seed=23, join_style="leaf"
        )
        host, manager, result = churned_run(
            architecture, placement, schedule,
            window=4.0, rate=0.8, duration=300.0, seed=23,
        )
        assert result.consistent
        assert host.metrics.reconfigs == 12
        assert host.epoch == 12
        assert host.share_graph.num_replicas == 64 + 8 - 4
        assert host.network.stats.messages_rejected_stale_epoch == 0


# ======================================================================
# Epoch migration edge cases
# ======================================================================

class TestEdgeCases:
    def test_reconfig_during_open_partition_defers_until_heal(self):
        placement = tree_placement(6)
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(graph, delay_model=FixedDelay(2.0), seed=3)
        injector = FaultInjector(cluster)
        injector.install(
            FaultSchedule(
                "split", (partition(30.0, [1, 2, 3], [4, 5, 6]), heal(90.0))
            )
        )
        manager = ReconfigManager(cluster, window=5.0)
        schedule = ReconfigSchedule("during-partition", (leave(40.0, 6),))
        manager.install(schedule)
        placements = schedule.placements_over(placement, window=5.0)
        workload = poisson_workload_dynamic(
            placements, rate=0.4, duration=120.0, seed=3
        )
        result = run_open_loop(cluster, workload)
        assert result.consistent
        assert cluster.metrics.reconfigs == 1
        # The commit waited for the heal: the epoch changed at (not before)
        # the heal time, and the deferral is on the timeline.
        assert cluster.epoch_history[-1][0] >= 90.0
        assert any(
            record.kind == "reconfig-deferred" and "partition" in record.detail
            for record in cluster.metrics.reconfig_timeline
        )

    def test_joiner_crash_mid_state_transfer_recovers_via_resync(self):
        placement = figure5_placement()
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(graph, delay_model=FixedDelay(5.0), seed=4)
        injector = FaultInjector(cluster)
        manager = ReconfigManager(cluster, window=2.0)
        # Seed y with history so the joiner has a real stream to receive.
        for round_index in range(4):
            cluster.schedule_arrival_at(
                1.0 + round_index, Operation("write", 1, "y", f"y{round_index}")
            )
        # Join at 20 (commit at 22); the stream is in flight (FixedDelay 5)
        # when the joiner crashes at 24; restart at 40 resyncs it.
        schedule = ReconfigSchedule("join", (join(20.0, 5, {"y"}),))
        manager.install(schedule)
        injector.install(
            FaultSchedule("crash-joiner", (crash(24.0, 5), restart(40.0, 5)))
        )
        cluster.run_until_quiescent()
        assert not manager.warming_replicas()
        report = cluster.check_consistency()
        assert report.is_causally_consistent
        joiner = cluster.replica(5)
        assert not joiner.bootstrapping
        # The joiner holds y's full history despite the mid-transfer crash.
        assert joiner.store["y"] == "y3"
        assert cluster.metrics.crashes == 1
        assert cluster.network.stats.messages_lost_to_crash > 0

    def test_back_to_back_reconfigs_serialize(self):
        placement = tree_placement(6)
        schedule = ReconfigSchedule(
            "burst",
            (
                join(50.0, 7, {"tree_1_2"}),
                join(50.0, 8, {"tree_1_3"}),
                leave(51.0, 6),
            ),
        )
        host, manager, result = churned_run(
            "peer-to-peer", placement, schedule, duration=130.0, window=4.0
        )
        assert result.consistent
        assert host.metrics.reconfigs == 3
        assert host.epoch == 3
        # Windows are serialized: each opens no earlier than the previous
        # commit.
        windows = host.metrics.migration_windows
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start >= prev_end

    def test_same_seed_determinism_with_full_schedule(self):
        placement = tree_placement(8)
        schedule = random_churn_schedule(
            placement, 150.0, joins=2, leaves=1, edge_changes=1,
            seed=11, join_style="group",
        )

        def one_run():
            host, manager, result = churned_run(
                "peer-to-peer", placement, schedule,
                duration=150.0, seed=11,
            )
            traces = {
                rid: [
                    (event.kind.value, event.update.uid if event.update else None)
                    for event in events
                ]
                for rid, events in host.events_by_replica().items()
            }
            return (
                result.consistent,
                host.epoch,
                host.metrics.applies,
                host.metrics.rejected_operations,
                host.network.stats.messages_sent,
                [(r.time, r.kind, r.detail) for r in host.metrics.reconfig_timeline],
                traces,
                host.metadata_sizes(),
            )

        assert one_run() == one_run()

    def test_flush_claims_messages_sent_onto_held_channels_mid_flush(self):
        """A serve unblocked *by* the commit flush can multicast old-epoch
        messages onto an explicitly held channel; the flush must claim
        those too, or they would surface after the epoch bump as stale
        frames and be lost for good."""
        from repro.clientserver import ClientAssignment

        placement = RegisterPlacement.from_dict(
            {1: {"x"}, 2: {"x", "y"}, 3: {"y"}, 4: {"q", "y"}}
        )
        graph = ShareGraph.from_placement(placement)
        clients = ClientAssignment.from_dict({"c": {2, 3}})
        cluster = ClientServerCluster(
            graph, clients, delay_model=FixedDelay(10.0), seed=0
        )
        manager = ReconfigManager(cluster, window=3.0)
        manager.install(ReconfigSchedule("leave4", (leave(5.0, 4),)))
        cluster.transport.hold(3, 2)
        cluster.transport.hold(2, 1)
        # The roaming client writes y at 3, making µ_c run ahead of server
        # 2; its next write of x at 2 buffers behind J1 until 3's update
        # reaches 2 — which only the commit flush's *held-channel claim*
        # provides (the (3, 2) channel is held, so the update is parked,
        # not scheduled).  Serving it then multicasts an old-epoch
        # x-update onto the still-held (2, 1) channel — after this flush
        # iteration already claimed the parked traffic.
        assert cluster.client_write("c", "y", "v1", replica_id=3) is not None
        issued = cluster.client_write("c", "x", "v2", replica_id=2)
        assert issued is not None
        cluster.run_until_quiescent()
        assert cluster.network.stats.messages_rejected_stale_epoch == 0
        assert cluster.servers[1].has_applied(issued.uid)
        assert cluster.check_consistency().is_causally_consistent

    def test_flush_apply_at_gaining_replica_is_not_a_false_violation(self):
        """An old-epoch message flushed at the commit instant must be judged
        against the old configuration's register set: a register gained in
        the same commit imposes no obligation on the flushed apply (its
        history is still in the bootstrap stream)."""
        placement = RegisterPlacement.from_dict(
            {1: {"x", "y"}, 2: {"y"}, 3: {"x"}}
        )
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(graph, delay_model=FixedDelay(15.0), seed=0)
        manager = ReconfigManager(cluster, window=2.0)
        manager.install(
            ReconfigSchedule("gain", (add_edge(10.0, 3, 2, register="x"),))
        )
        # u1(x) ↪ u2(y); u2 is still in flight to replica 2 at the commit
        # (t=12 < delivery t=17), so the flush applies it exactly at the
        # epoch boundary — while x's history reaches 2 only via transfer.
        cluster.schedule_arrival_at(1.0, Operation("write", 1, "x", "x1"))
        cluster.schedule_arrival_at(2.0, Operation("write", 1, "y", "y1"))
        cluster.run_until_quiescent()
        report = cluster.check_consistency()
        assert report.is_causally_consistent, report.summary()
        assert cluster.replica(2).store["x"] == "x1"

    def test_churn_schedule_rejects_leave_on_tiny_placement(self):
        placement = RegisterPlacement.from_dict({1: {"x"}, 2: {"x"}})
        with pytest.raises(ReconfigurationError):
            random_churn_schedule(placement, 100.0, joins=0, leaves=1, seed=0)

    def test_rejoining_a_retired_id_is_refused(self):
        placement = tree_placement(4)
        schedule = ReconfigSchedule(
            "rejoin", (leave(20.0, 4), join(60.0, 4, {"tree_1_2"}))
        )
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(graph, delay_model=FixedDelay(2.0), seed=0)
        manager = ReconfigManager(cluster, window=2.0)
        manager.install(schedule)
        with pytest.raises(ReconfigurationError):
            cluster.run_until_quiescent()


# ======================================================================
# State-transfer regressions (found by the adaptive controller)
# ======================================================================

class TestStateTransferRegressions:
    def test_regrant_after_drop_completes_and_stays_live(self):
        """A replica re-gaining a register it once stored must catch up.

        Regression: the bootstrap stream used to replay the register's
        *full* history; the re-gainer's duplicate suppression silently
        dropped the prefix it had already applied, the stream's position
        counter never advanced past it, and the replica was left gated
        behind an eternally-open state transfer — every later update to
        the register became a liveness violation.
        """
        placement = figure5_placement()
        schedule = ReconfigSchedule(
            "regrant",
            (
                add_edge(40.0, 1, 3, register="y"),   # 3 gains y: transfer
                remove_edge(80.0, 1, 3),              # 3 drops y again
                add_edge(120.0, 1, 3, register="y"),  # 3 RE-gains y
            ),
        )
        host, manager, result = churned_run(
            "peer-to-peer", placement, schedule, duration=200.0
        )
        assert result.consistent
        assert host.metrics.reconfigs == 3
        assert not manager.warming_replicas()

    def test_history_replay_is_not_an_apply_latency_sample(self):
        """State transfer replays old updates; their issue→apply deltas
        measure the history's age, not propagation, and must not pollute
        the apply-latency distribution."""
        placement = figure5_placement()
        schedule = ReconfigSchedule(
            "late-grant", (add_edge(150.0, 1, 3, register="y"),)
        )
        host, manager, result = churned_run(
            "peer-to-peer", placement, schedule, duration=160.0
        )
        assert result.consistent
        assert host.metrics.reconfigs == 1
        transferred = [
            record for record in host.metrics.reconfig_timeline
            if record.kind == "transfer-start"
        ]
        assert transferred, "the late grant should have moved history"
        assert host.metrics.apply_latencies, "run produced no applies"
        assert max(host.metrics.apply_latencies) < 100.0, (
            "a replayed t~0 update issued long before the t=150 grant "
            "leaked into the apply-latency samples"
        )


# ======================================================================
# Reconfiguration on measured topologies (LatencyDelayModel)
# ======================================================================

class TestLatencyDelayModelReconfig:
    """Joins must extend a measured delay model's channel table.

    ``LatencyDelayModel`` precomputed its per-channel base latencies over
    the construction-time assignment only, so a replica joined through
    ``sim/reconfig.py`` hit ``TopologyError`` from ``channel_base`` on its
    first message — reconfiguration was impossible on measured topologies.
    """

    def _measured_cluster(self, seed=11, jitter=0.0):
        topology = geo_regions(2, 3)
        placement = path_placement_small()
        nodes = sorted(topology.nodes)
        assignment = {rid: nodes[rid - 1] for rid in placement.replica_ids}
        model = LatencyDelayModel(topology, assignment, jitter=jitter)
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(graph, delay_model=model, seed=seed)
        return topology, placement, assignment, model, cluster

    def test_assign_extends_channel_table_with_shortest_paths(self):
        topology, _, assignment, model, _ = self._measured_cluster()
        joiner_node = sorted(topology.nodes)[-1]
        model.assign(5, joiner_node)
        assert model.node_of(5) == joiner_node
        for rid, node in assignment.items():
            expected = (
                model.local_latency_ms if node == joiner_node
                else topology.path_latency(node, joiner_node)
            )
            assert model.channel_base((rid, 5)) == expected
            assert model.channel_base((5, rid)) == expected

    def test_assign_rejects_unknown_node(self):
        _, _, _, model, _ = self._measured_cluster()
        with pytest.raises(TopologyError):
            model.assign(5, "nowhere")

    def test_join_mid_run_under_latency_model_stays_consistent(self):
        """The bugfix scenario: a mid-run join on a measured topology.

        Before the fix this run died with ``TopologyError: channel (5, 4)
        has an unassigned endpoint`` the moment the joiner first spoke.
        """
        topology, placement, _, model, cluster = self._measured_cluster()
        manager = ReconfigManager(cluster, window=3.0)
        joiner_node = sorted(topology.nodes)[-1]
        schedule = ReconfigSchedule(
            "measured-join",
            (join(40.0, 5, {"z", "link_5_4"}, grants={4: {"link_5_4"}},
                  node=joiner_node),),
        )
        manager.install(schedule)
        placements = schedule.placements_over(placement, window=3.0)
        workload = poisson_workload_dynamic(
            placements, rate=0.4, duration=120.0, seed=11
        )
        result = run_open_loop(cluster, workload)
        assert result.consistent
        assert cluster.metrics.reconfigs == 1
        assert cluster.is_member(5)
        assert model.node_of(5) == joiner_node
        node_of_4 = model.node_of(4)
        assert model.channel_base((5, 4)) == topology.path_latency(
            joiner_node, node_of_4
        )

    def test_join_without_node_co_hosts_with_a_neighbor(self):
        """Schedules that predate the ``node=`` knob (e.g. random churn)
        still work: the joiner is co-hosted with its first share-graph
        neighbor, paying loopback latency on that channel."""
        topology, placement, _, model, cluster = self._measured_cluster()
        manager = ReconfigManager(cluster, window=3.0)
        schedule = ReconfigSchedule(
            "implicit-join",
            (join(40.0, 5, {"link_5_2"}, grants={2: {"link_5_2"}}),),
        )
        manager.install(schedule)
        placements = schedule.placements_over(placement, window=3.0)
        workload = poisson_workload_dynamic(
            placements, rate=0.4, duration=120.0, seed=12
        )
        result = run_open_loop(cluster, workload)
        assert result.consistent
        assert model.node_of(5) == model.node_of(2)
        assert model.channel_base((5, 2)) == model.local_latency_ms

    def test_join_reaches_assign_through_fate_wrappers(self):
        """The commit path unwraps ``ChannelFateWrapper`` chains to find
        the measured model underneath (lossy links over a topology)."""
        topology, placement, _, model, _ = self._measured_cluster()
        graph = ShareGraph.from_placement(placement)
        wrapped = LossyDelay(inner=model, drop_probability=0.0)
        cluster = Cluster(graph, delay_model=wrapped, seed=13)
        manager = ReconfigManager(cluster, window=3.0)
        joiner_node = sorted(topology.nodes)[2]
        schedule = ReconfigSchedule(
            "wrapped-join",
            (join(40.0, 5, {"z"}, node=joiner_node),),
        )
        manager.install(schedule)
        placements = schedule.placements_over(placement, window=3.0)
        workload = poisson_workload_dynamic(
            placements, rate=0.4, duration=120.0, seed=13
        )
        result = run_open_loop(cluster, workload)
        assert result.consistent
        assert model.node_of(5) == joiner_node
