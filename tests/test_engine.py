"""Tests for the unified simulation kernel (repro.sim.engine).

Covers the typed event queue (ordering, determinism), the open-loop
workload generators, peer-to-peer vs client–server parity on one workload,
the indexed apply path against the reference rescan, and the cross-replica
apply fixpoint at quiescence.
"""

from __future__ import annotations

import pytest

from repro.clientserver import ClientServerCluster
from repro.core.protocol import CausalReplica, Update, UpdateMessage
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster, build_cluster, edge_indexed_factory
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.engine import (
    ArrivalEvent,
    DeliveryEvent,
    EventKernel,
    LatencySummary,
    TimerEvent,
    throughput_timeline,
)
from repro.sim.topologies import figure5_placement, ring_placement, triangle_placement
from repro.sim.workloads import (
    Operation,
    bursty_workload,
    poisson_workload,
    run_open_loop,
    run_workload,
    uniform_workload,
)


def _msg(sender=1, dest=2, seq=1):
    update = Update(issuer=sender, seq=seq, register="x", value=seq)
    return UpdateMessage(
        update=update, sender=sender, destination=dest, metadata=None, metadata_size=0
    )


class TestEventKernel:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel()
        kernel.schedule_at(5.0, TimerEvent(callback=lambda h, t: None, tag="late"))
        kernel.schedule_at(1.0, TimerEvent(callback=lambda h, t: None, tag="early"))
        assert kernel.next_event().event.tag == "early"
        assert kernel.now == pytest.approx(1.0)
        assert kernel.next_event().event.tag == "late"
        assert kernel.next_event() is None

    def test_same_time_priority_delivery_then_arrival_then_timer(self):
        kernel = EventKernel()
        kernel.schedule_at(2.0, TimerEvent(callback=lambda h, t: None))
        kernel.schedule_at(2.0, ArrivalEvent(operation=None))
        kernel.schedule_at(2.0, DeliveryEvent(message=_msg(), sent_at=0.0))
        kinds = [type(kernel.next_event().event) for _ in range(3)]
        assert kinds == [DeliveryEvent, ArrivalEvent, TimerEvent]

    def test_same_time_same_kind_fifo(self):
        kernel = EventKernel()
        for tag in ("a", "b", "c"):
            kernel.schedule_at(1.0, TimerEvent(callback=lambda h, t: None, tag=tag))
        assert [kernel.next_event().event.tag for _ in range(3)] == ["a", "b", "c"]

    def test_cannot_schedule_in_the_past(self):
        from repro.core.errors import SimulationError

        kernel = EventKernel()
        kernel.schedule_at(3.0, TimerEvent(callback=lambda h, t: None))
        kernel.next_event()
        with pytest.raises(SimulationError):
            kernel.schedule_at(1.0, TimerEvent(callback=lambda h, t: None))

    def test_pending_counts_by_type(self):
        kernel = EventKernel()
        kernel.schedule_at(1.0, DeliveryEvent(message=_msg(), sent_at=0.0))
        kernel.schedule_at(2.0, ArrivalEvent(operation=None))
        assert kernel.pending_events() == 2
        assert kernel.pending_of(DeliveryEvent) == 1
        assert kernel.pending_of(ArrivalEvent) == 1
        assert kernel.peek_time() == pytest.approx(1.0)


class TestTimers:
    def test_timers_interleave_with_deliveries(self):
        graph = ShareGraph.from_placement(triangle_placement())
        cluster = build_cluster(graph, delay_model=FixedDelay(2.0), seed=0)
        fired = []
        cluster.schedule_timer(1.0, lambda host, t: fired.append(("t1", t)))
        cluster.schedule_timer(3.0, lambda host, t: fired.append(("t3", t)))
        cluster.write(1, "x", "v")  # delivery at t=2
        cluster.run_until_quiescent()
        assert fired == [("t1", 1.0), ("t3", 3.0)]
        assert cluster.read(2, "x") == "v"

    def test_queue_depth_sampling(self):
        graph = ShareGraph.from_placement(triangle_placement())
        cluster = build_cluster(graph, delay_model=FixedDelay(5.0), seed=0)
        cluster.write(1, "x", "v")
        cluster.schedule_timer(1.0, lambda host, t: host.sample_queue_depths())
        cluster.run_until_quiescent()
        assert len(cluster.metrics.queue_samples) == len(graph.replica_ids)
        assert all(s.time == pytest.approx(1.0) for s in cluster.metrics.queue_samples)


class TestMetricsPipeline:
    def test_latency_summary_percentiles(self):
        summary = LatencySummary.from_samples(list(range(1, 101)))
        assert summary.count == 100
        assert summary.p50 == 50
        assert summary.p90 == 90
        assert summary.p99 == 99
        assert summary.max == 100
        assert summary.mean == pytest.approx(50.5)

    def test_latency_summary_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_throughput_timeline_includes_empty_buckets(self):
        timeline = throughput_timeline([0.5, 0.7, 25.0], bucket_width=10.0)
        assert timeline == [(0.0, 2), (10.0, 0), (20.0, 1)]

    def test_run_metrics_shared_by_both_architectures(self):
        graph = ShareGraph.from_placement(triangle_placement())
        p2p = build_cluster(graph, delay_model=FixedDelay(1.0), seed=1)
        cs = ClientServerCluster.with_colocated_clients(
            graph, delay_model=FixedDelay(1.0), seed=1
        )
        for host in (p2p, cs):
            host.submit_operation(Operation("write", 1, "x", value="v"))
            host.submit_operation(Operation("read", 2, "x"))
            host.run_until_quiescent()
            assert host.metrics.writes == 1
            assert host.metrics.reads == 1
            assert host.metrics.applies == 1
            assert host.metrics.apply_latency_summary().count == 1
            assert host.metrics.mean_apply_latency > 0


class TestOpenLoopGenerators:
    def make_graph(self):
        return ShareGraph.from_placement(figure5_placement())

    def test_poisson_arrival_times_sorted_and_bounded(self):
        graph = self.make_graph()
        workload = poisson_workload(graph, rate=2.0, duration=100.0, seed=1)
        times = [a.time for a in workload.arrivals]
        assert times == sorted(times)
        assert all(0 < t <= 100.0 for t in times)
        # Mean count is rate * duration = 200; allow wide slack.
        assert 120 < len(workload) < 300

    def test_poisson_targets_stored_registers(self):
        graph = self.make_graph()
        workload = poisson_workload(graph, rate=1.0, duration=50.0, seed=2)
        for arrival in workload.arrivals:
            op = arrival.operation
            assert graph.placement.stores_register(op.replica_id, op.register)

    def test_poisson_determinism(self):
        graph = self.make_graph()
        assert poisson_workload(graph, 1.5, 40.0, seed=3) == poisson_workload(
            graph, 1.5, 40.0, seed=3
        )
        assert poisson_workload(graph, 1.5, 40.0, seed=3) != poisson_workload(
            graph, 1.5, 40.0, seed=4
        )

    def test_bursty_silent_gaps(self):
        graph = self.make_graph()
        workload = bursty_workload(
            graph,
            burst_rate=5.0,
            idle_rate=0.0,
            burst_length=10.0,
            idle_length=10.0,
            duration=60.0,
            seed=5,
        )
        assert len(workload) > 0
        # With idle_rate=0 every arrival falls inside a burst window
        # ([0,10), [20,30), [40,50)...).
        for arrival in workload.arrivals:
            phase = int(arrival.time // 10.0)
            assert phase % 2 == 0, f"arrival at {arrival.time} inside an idle gap"

    def test_invalid_parameters_rejected(self):
        from repro.core.errors import ConfigurationError

        graph = self.make_graph()
        with pytest.raises(ConfigurationError):
            poisson_workload(graph, rate=0.0, duration=10.0)
        with pytest.raises(ConfigurationError):
            bursty_workload(graph, 1.0, -1.0, 1.0, 1.0, 10.0)


class TestOpenLoopRuns:
    def test_open_loop_on_peer_to_peer(self):
        graph = ShareGraph.from_placement(figure5_placement())
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=7)
        workload = poisson_workload(graph, rate=1.0, duration=80.0, seed=7)
        result = run_open_loop(cluster, workload, queue_sample_interval=5.0)
        assert result.consistent
        assert result.makespan >= workload.duration
        assert result.apply_latency.count == cluster.metrics.applies > 0
        assert result.throughput, "throughput timeline should not be empty"
        assert sum(c for _, c in result.throughput) == cluster.metrics.applies
        assert result.queue_depths, "queue depths should have been sampled"
        assert cluster.pending_updates() == 0

    def test_open_loop_same_seed_determinism(self):
        graph = ShareGraph.from_placement(figure5_placement())

        def run():
            cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=11)
            workload = poisson_workload(graph, rate=1.5, duration=60.0, seed=11)
            result = run_open_loop(cluster, workload)
            return cluster.events_by_replica(), result.makespan, result.messages_sent

        events_a, makespan_a, msgs_a = run()
        events_b, makespan_b, msgs_b = run()
        assert events_a == events_b
        assert makespan_a == pytest.approx(makespan_b)
        assert msgs_a == msgs_b

    def test_open_loop_on_warmed_up_host(self):
        """Arrival spacing and makespan are relative to the run's start."""
        graph = ShareGraph.from_placement(triangle_placement())
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=5)
        workload = poisson_workload(graph, rate=1.0, duration=30.0, seed=5)
        first = run_open_loop(cluster, workload)
        assert cluster.now > 0
        second = run_open_loop(cluster, workload)
        # The same schedule replays with its spacing intact: the makespan is
        # measured from the start of the call, not the cumulative clock.
        assert second.makespan == pytest.approx(first.makespan)
        assert second.consistent

    def test_makespan_not_inflated_by_trailing_sampler(self):
        graph = ShareGraph.from_placement(triangle_placement())
        baseline = build_cluster(graph, delay_model=FixedDelay(1.0), seed=6)
        workload = poisson_workload(graph, rate=0.5, duration=40.0, seed=6)
        no_sampler = run_open_loop(baseline, workload)
        sampled_cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=6)
        sampled = run_open_loop(sampled_cluster, workload, queue_sample_interval=7.0)
        assert sampled.makespan == pytest.approx(no_sampler.makespan)

    def test_blocking_arrivals_do_not_recurse(self):
        """An arrival whose submit steps the kernel defers later arrivals
        instead of nesting one Python frame-set per queued arrival."""
        graph = ShareGraph.from_placement(triangle_placement())

        class SteppingCluster(Cluster):
            """Simulates a blocking client op: every submit drives the kernel."""

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.order = []

            def submit_operation(self, operation):
                self.order.append(operation.value)
                self.step()  # may pop the next ArrivalEvent
                return super().submit_operation(operation)

        cluster = SteppingCluster(graph, delay_model=FixedDelay(1.0), seed=0)
        count = 2000  # would exceed the default recursion limit if nested
        for index in range(count):
            cluster.schedule_arrival(
                0.001 * (index + 1), Operation("write", 1, "x", value=f"v{index}")
            )
        cluster.run_until_quiescent()
        assert cluster.metrics.writes == count
        assert cluster.order == [f"v{i}" for i in range(count)]

    def test_open_loop_on_client_server(self):
        graph = ShareGraph.from_placement(triangle_placement())
        cluster = ClientServerCluster.with_colocated_clients(
            graph, delay_model=UniformDelay(1, 5), seed=3
        )
        workload = poisson_workload(graph, rate=1.0, duration=40.0, seed=3)
        result = run_open_loop(cluster, workload)
        assert result.consistent
        assert result.operation_latency.count == len(workload)


class TestArchitectureParity:
    """The same replica-addressed workload on Figure 1a vs Figure 1b."""

    def _run_both(self, seed: int):
        graph = ShareGraph.from_placement(figure5_placement())
        workload = uniform_workload(graph, 80, seed=seed)
        p2p = build_cluster(graph, delay_model=FixedDelay(2.0), seed=seed)
        cs = ClientServerCluster.with_colocated_clients(
            graph, delay_model=FixedDelay(2.0), seed=seed
        )
        r1 = run_workload(p2p, workload)
        r2 = run_workload(cs, workload)
        return graph, p2p, cs, r1, r2

    def test_same_applied_updates_and_values(self):
        graph, p2p, cs, r1, r2 = self._run_both(seed=13)
        assert r1.consistent and r2.consistent
        for rid in graph.replica_ids:
            p2p_applied = {u.uid for u in p2p.replicas[rid].applied}
            cs_applied = {u.uid for u in cs.servers[rid].applied}
            assert p2p_applied == cs_applied, f"replica {rid} applied sets differ"
        for register in graph.placement.registers:
            assert p2p.values(register) == cs.values(register)

    def test_same_traffic_and_metrics_shape(self):
        _, p2p, cs, r1, r2 = self._run_both(seed=17)
        assert r1.messages_sent == r2.messages_sent
        assert p2p.metrics.writes == cs.metrics.writes
        assert p2p.metrics.reads == cs.metrics.reads
        assert p2p.metrics.applies == cs.metrics.applies


class TestIndexedApplyPath:
    """The pending-index fast path against the reference rescan."""

    def _rescan_factory(self, graph, replica_id):
        replica = EdgeIndexedReplica(graph, replica_id)

        def rescan(sim_time: float = 0.0, force: bool = False):
            return replica.apply_ready_rescan(sim_time)

        replica.apply_ready = rescan  # type: ignore[method-assign]
        return replica

    @pytest.mark.parametrize("placement_seed", [1, 2, 3])
    def test_differential_against_rescan(self, placement_seed):
        graph = ShareGraph.from_placement(
            ring_placement(6) if placement_seed == 1 else figure5_placement()
        )
        workload = uniform_workload(graph, 120, seed=placement_seed)
        indexed = build_cluster(graph, delay_model=UniformDelay(1, 20), seed=placement_seed)
        rescan = Cluster(
            graph,
            replica_factory=self._rescan_factory,
            delay_model=UniformDelay(1, 20),
            seed=placement_seed,
        )
        r_indexed = run_workload(indexed, workload, interleave_steps=2)
        r_rescan = run_workload(rescan, workload, interleave_steps=2)
        assert r_indexed.consistent and r_rescan.consistent
        for rid in graph.replica_ids:
            assert {u.uid for u in indexed.replicas[rid].applied} == {
                u.uid for u in rescan.replicas[rid].applied
            }
        assert indexed.pending_updates() == rescan.pending_updates() == 0

    def test_blocked_message_applies_once_notified(self, triangle_graph):
        """Out-of-order delivery: the index re-checks exactly when unblocked."""
        writer = EdgeIndexedReplica(triangle_graph, 1)
        receiver = EdgeIndexedReplica(triangle_graph, 2)
        first = [m for m in writer.write("x", "a") if m.destination == 2][0]
        second = [m for m in writer.write("x", "b") if m.destination == 2][0]
        receiver.receive(second)
        assert receiver.apply_ready() == []  # FIFO gap: parked on edge (1, 2)
        assert receiver.pending_count() == 1
        receiver.receive(first)
        assert [u.value for u in receiver.apply_ready()] == ["a", "b"]
        assert receiver.pending_count() == 0


class OracleReplica(CausalReplica):
    """A test protocol whose delivery predicate reads *cross-replica* state.

    A message carries the uid of one dependency in its metadata; it may be
    applied only once some replica anywhere in the system has applied that
    dependency.  This makes a single final apply pass insufficient: replica
    A's apply during the pass can unblock replica B's buffered update, which
    only a cross-replica fixpoint picks up.
    """

    def __init__(self, share_graph, replica_id, oracle):
        super().__init__(replica_id, share_graph.registers_at(replica_id))
        self.share_graph = share_graph
        self.oracle = oracle

    def destinations(self, register):
        return tuple(
            rid
            for rid in self.share_graph.replicas_storing(register)
            if rid != self.replica_id
        )

    def make_metadata(self, register):
        self.oracle.add((self.replica_id, self.issued_count))
        return None, 0

    def can_apply(self, message):
        dependency = message.metadata
        return dependency is None or dependency in self.oracle

    def absorb_metadata(self, message):
        self.oracle.add(message.update.uid)

    def metadata_size(self):
        return 0


class TestQuiescenceFixpoint:
    """Satellite regression: the final apply pass is a cross-replica fixpoint."""

    def test_chain_across_replicas_resolves_at_quiescence(self):
        graph = ShareGraph.from_placement(triangle_placement())
        oracle = set()
        cluster = Cluster(
            graph,
            replica_factory=lambda g, rid: OracleReplica(g, rid, oracle),
            delay_model=FixedDelay(1.0),
            seed=0,
        )
        # A dependency chain that unblocks strictly *against* the replica
        # iteration order (1, 2, 3) of the final pass:
        #   u_c at replica 1 depends on u_b,
        #   u_b at replica 3 depends on u_a,
        #   u_a arrives (and is applied) at replica 2 *last*,
        # so when the network drains both u_b and u_c are still buffered.
        # Pass 1 over (1, 2, 3) leaves u_c parked at replica 1 — replica 3
        # only applies u_b (unblocking u_c) later in that same pass.  Only
        # the cross-replica fixpoint's second round applies u_c.
        u_a = Update(issuer=1, seq=1, register="x", value="a")  # x shared by 1, 2
        u_b = Update(issuer=2, seq=1, register="y", value="b")  # y shared by 2, 3
        u_c = Update(issuer=3, seq=1, register="z", value="c")  # z shared by 3, 1
        cluster.network.send(
            UpdateMessage(update=u_c, sender=3, destination=1,
                          metadata=u_b.uid, metadata_size=0),
            delay=1.0,
        )
        cluster.network.send(
            UpdateMessage(update=u_b, sender=2, destination=3,
                          metadata=u_a.uid, metadata_size=0),
            delay=2.0,
        )
        cluster.network.send(
            UpdateMessage(update=u_a, sender=1, destination=2,
                          metadata=None, metadata_size=0),
            delay=3.0,
        )
        cluster.run_until_quiescent()
        assert cluster.pending_updates() == 0
        assert cluster.replicas[2].has_applied(u_a.uid)
        assert cluster.replicas[3].has_applied(u_b.uid)
        assert cluster.replicas[1].has_applied(u_c.uid)
