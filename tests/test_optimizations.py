"""Unit and integration tests for repro.optimizations."""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyChecker
from repro.core.errors import ConfigurationError
from repro.core.registers import RegisterPlacement
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import TimestampGraph, build_all_timestamp_graphs
from repro.core.timestamps import EdgeTimestamp
from repro.optimizations import (
    analyze_ring_breaking,
    analyze_star_restriction,
    bounded_factory,
    bounded_metadata_savings,
    bounded_timestamp_graphs,
    break_ring_placement,
    compress_timestamp,
    compressed_counters,
    compression_report,
    dummy_emulation_report,
    dummy_register_factory,
    full_replication_dummies,
    independent_edge_count,
    loop_cover_dummies,
)
from repro.optimizations.dummy_registers import DummyAssignment, DummyRegisterReplica
from repro.sim.cluster import Cluster
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.topologies import (
    clique_placement,
    figure5_placement,
    ring_placement,
    tree_placement,
    triangle_placement,
)
from repro.sim.workloads import run_workload, uniform_workload


class TestCompression:
    def test_paper_example_redundant_edge(self):
        """The Appendix-D example: X_j4 = X_j1 ∪ X_j2 ∪ X_j3 makes e_j4 redundant."""
        placement = RegisterPlacement.from_dict(
            {
                0: {"x", "y", "z"},          # the issuer j
                1: {"x"},
                2: {"y"},
                3: {"z"},
                4: {"x", "y", "z"},
            }
        )
        graph = ShareGraph.from_placement(placement)
        tgraph = TimestampGraph.from_edges(
            graph, 4, [(0, 1), (0, 2), (0, 3), (0, 4)]
        )
        assert independent_edge_count(graph, tgraph, 0) == 3

    def test_full_replication_compresses_to_R(self):
        graph = ShareGraph.from_placement(clique_placement(5))
        report = compression_report(graph)
        assert all(v == 5 for v in report.compressed.values())
        assert all(v == 20 for v in report.uncompressed.values())
        assert report.compression_ratio == pytest.approx(0.25)

    def test_pairwise_topologies_do_not_compress(self):
        graph = ShareGraph.from_placement(ring_placement(6))
        report = compression_report(graph)
        assert report.total_compressed == report.total_uncompressed
        assert report.savings(1) == 0

    def test_compressed_never_exceeds_uncompressed(self, any_small_graph):
        report = compression_report(any_small_graph)
        for rid in report.uncompressed:
            assert report.compressed[rid] <= report.uncompressed[rid]
            assert report.compressed[rid] >= 0

    def test_report_rows_sorted(self):
        graph = ShareGraph.from_placement(triangle_placement())
        rows = compression_report(graph).rows()
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_compress_timestamp_partition(self):
        graph = ShareGraph.from_placement(clique_placement(4))
        tgraph = TimestampGraph.build(graph, 1)
        timestamp = EdgeTimestamp.zero(tgraph.edges).incremented([(2, 1), (2, 3)])
        kept, derived = compress_timestamp(graph, tgraph, timestamp)
        assert set(kept) | set(derived) == set(tgraph.edges)
        assert not (set(kept) & set(derived))
        # Every derived edge points back at kept edges of the same issuer.
        for e, basis in derived.items():
            assert all(b[0] == e[0] for b in basis)


class TestDummyRegisters:
    def test_full_replication_dummies_cover_everything(self):
        placement = figure5_placement()
        assignment = full_replication_dummies(placement)
        augmented = assignment.augmented_placement()
        assert augmented.is_fully_replicated()
        assert assignment.total_dummies() == sum(
            len(placement.registers - placement.registers_at(rid))
            for rid in placement.replica_ids
        )

    def test_dummies_never_include_real_registers(self):
        placement = figure5_placement()
        assignment = loop_cover_dummies(placement)
        for rid, regs in assignment.dummies.items():
            assert not (regs & placement.registers_at(rid))

    def test_is_dummy(self):
        placement = triangle_placement()
        assignment = DummyAssignment(original=placement, dummies={1: frozenset({"y"})})
        assert assignment.is_dummy(1, "y")
        assert not assignment.is_dummy(1, "x")
        assert not assignment.is_dummy(2, "y")

    def test_loop_cover_reduces_to_neighbour_tracking(self):
        # After the loop-cover transformation every timestamp graph of the
        # augmented share graph compresses (and the point of the scheme is
        # that remote edges become incident edges).
        placement = ring_placement(5)
        assignment = loop_cover_dummies(placement)
        report = dummy_emulation_report(assignment)
        assert report.mean_compressed_after <= report.mean_counters_before

    def test_emulation_report_extra_messages(self):
        placement = triangle_placement()
        assignment = full_replication_dummies(placement)
        report = dummy_emulation_report(assignment)
        # Each of the three registers gains exactly one dummy holder.
        assert report.total_extra_messages_per_round == 3
        assert report.total_dummies == 3

    def test_dummy_replica_sends_metadata_only_to_dummy_holders(self):
        placement = triangle_placement()
        assignment = full_replication_dummies(placement)
        augmented = ShareGraph.from_placement(assignment.augmented_placement())
        replica = DummyRegisterReplica(assignment, augmented, 1)
        messages = replica.write("x", "v")
        by_dest = {m.destination: m for m in messages}
        # Replica 2 really stores x; replica 3 holds it only as a dummy.
        assert by_dest[2].payload is True
        assert by_dest[3].payload is False

    def test_dummy_cluster_remains_consistent_wrt_original_graph(self):
        placement = ring_placement(5)
        original_graph = ShareGraph.from_placement(placement)
        assignment = loop_cover_dummies(placement)
        augmented = ShareGraph.from_placement(assignment.augmented_placement())
        cluster = Cluster(
            augmented,
            replica_factory=dummy_register_factory(assignment),
            delay_model=UniformDelay(1, 10),
            seed=8,
        )
        workload = uniform_workload(original_graph, 80, seed=8)
        for op in workload.operations:
            if op.kind == "write":
                cluster.write(op.replica_id, op.register, op.value)
            else:
                cluster.read(op.replica_id, op.register)
            cluster.step()
        cluster.run_until_quiescent()
        report = ConsistencyChecker(original_graph).check(cluster.events_by_replica())
        assert report.is_causally_consistent

    def test_dummy_cluster_sends_more_messages(self):
        placement = ring_placement(5)
        original_graph = ShareGraph.from_placement(placement)
        workload = uniform_workload(original_graph, 60, seed=9)

        plain = Cluster(original_graph, delay_model=FixedDelay(1.0), seed=9)
        plain_result = run_workload(plain, workload)

        assignment = full_replication_dummies(placement)
        augmented = ShareGraph.from_placement(assignment.augmented_placement())
        dummy_cluster = Cluster(
            augmented,
            replica_factory=dummy_register_factory(assignment),
            delay_model=FixedDelay(1.0),
            seed=9,
        )
        for op in workload.operations:
            if op.kind == "write":
                dummy_cluster.write(op.replica_id, op.register, op.value)
            else:
                dummy_cluster.read(op.replica_id, op.register)
        dummy_cluster.run_until_quiescent()
        assert (
            dummy_cluster.network.stats.messages_sent > plain_result.messages_sent
        )
        assert dummy_cluster.network.stats.metadata_only_messages_sent > 0


class TestVirtualRegisters:
    def test_break_ring_placement_shapes(self):
        ring, path = break_ring_placement(6)
        assert ShareGraph.from_placement(ring).is_cycle()
        assert ShareGraph.from_placement(path).is_tree()

    def test_break_ring_rejects_small(self):
        with pytest.raises(ConfigurationError):
            break_ring_placement(2)

    @pytest.mark.parametrize("n", [4, 6, 10])
    def test_ring_breaking_saves_counters(self, n):
        analysis = analyze_ring_breaking(n)
        assert analysis.total_counters_before == n * 2 * n
        assert analysis.total_counters_after < analysis.total_counters_before
        assert analysis.counters_saved > 0
        assert analysis.max_hops_after == n - 1
        assert analysis.hop_inflation == pytest.approx(n - 1)
        assert analysis.extra_relay_messages_per_update == n - 2
        assert len(analysis.rows()) == n

    def test_star_restriction(self):
        analysis = analyze_star_restriction(8)
        assert analysis.total_counters_after < analysis.total_counters_before
        assert analysis.max_hops_after == 2
        with pytest.raises(ConfigurationError):
            analyze_star_restriction(2)


class TestBoundedLoops:
    def test_bounded_graphs_drop_long_loop_edges(self):
        graph = ShareGraph.from_placement(ring_placement(6))
        bounded = bounded_timestamp_graphs(graph, max_loop_length=3)
        exact = build_all_timestamp_graphs(graph)
        for rid in graph.replica_ids:
            assert bounded[rid].edges == graph.incident_edges(rid)
            assert bounded[rid].edges < exact[rid].edges

    def test_bounded_equals_exact_when_bound_is_loose(self):
        graph = ShareGraph.from_placement(triangle_placement())
        bounded = bounded_timestamp_graphs(graph, max_loop_length=3)
        exact = build_all_timestamp_graphs(graph)
        for rid in graph.replica_ids:
            assert bounded[rid].edges == exact[rid].edges

    def test_bounded_savings_accounting(self):
        graph = ShareGraph.from_placement(ring_placement(6))
        savings = bounded_metadata_savings(graph, 3)
        assert savings.total_exact == 6 * 12
        assert savings.total_bounded == 6 * 4
        assert savings.counters_saved == savings.total_exact - savings.total_bounded

    def test_bounded_protocol_consistent_under_loose_synchrony(self):
        graph = ShareGraph.from_placement(ring_placement(5))
        cluster = Cluster(
            graph,
            replica_factory=bounded_factory(3),
            delay_model=FixedDelay(1.0),
            seed=2,
        )
        result = run_workload(cluster, uniform_workload(graph, 100, seed=2))
        assert result.consistent

    def test_bounded_protocol_violated_by_adversarial_delays(self):
        graph = ShareGraph.from_placement(ring_placement(5))
        cluster = Cluster(
            graph,
            replica_factory=bounded_factory(3),
            delay_model=FixedDelay(1.0),
            seed=3,
        )
        # The Theorem-8 chain around the ring with the direct edge held back.
        cluster.network.hold(1, 5)
        cluster.write(1, "ring_5", "direct")
        for hop in range(1, 5):
            cluster.write(hop, f"ring_{hop}", f"c{hop}")
            cluster.run_until_quiescent()
        cluster.network.release_all()
        cluster.run_until_quiescent()
        assert not cluster.check_consistency().is_safe
