"""The observability layer in simulation: tracing, registry, analysis.

Three layers of coverage:

* **unit** — the metrics registry (counter/gauge/histogram semantics,
  label children, JSONL + Prometheus export) and the trace codec;
* **integration** — a seeded 64-replica clique run with tracing on: the
  acceptance bar requires ≥99% of delivered ops to reconstruct their
  full issue→send→wire→deliver→apply chain from the JSONL dump alone,
  with per-stage percentiles and a structurally valid Chrome
  ``trace_event`` export;
* **contract** — tracing is off by default and hooks are attribute-level
  (``tracer is None``), so an untraced run records nothing.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.baselines.vector_clock_full import full_replication_factory
from repro.core.errors import ConfigurationError
from repro.core.share_graph import ShareGraph
from repro.obs import (
    MetricsRegistry,
    assemble_spans,
    channel_byte_table,
    chrome_trace,
    complete_chains,
    coverage,
    critical_paths,
    epoch_byte_table,
    fold_samples,
    load_metrics_jsonl,
    load_trace_jsonl,
    publish_epoch_segments,
    registry_for_sim,
    stage_breakdown,
    write_trace_jsonl,
)
from repro.sim.cluster import Cluster
from repro.sim.delays import UniformDelay
from repro.sim.engine import BatchingConfig
from repro.sim.reconfig import (
    ReconfigManager,
    ReconfigSchedule,
    add_edge,
    remove_edge,
)
from repro.sim.topologies import clique_placement, figure5_placement, tree_placement
from repro.sim.workloads import (
    poisson_workload,
    poisson_workload_dynamic,
    run_open_loop,
    single_writer_workload,
)


# ======================================================================
# Registry units
# ======================================================================

class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_label_children_are_distinct_and_order_insensitive(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", src=1, dst=2)
        b = registry.counter("repro_x_total", dst=2, src=1)
        c = registry.counter("repro_x_total", src=2, dst=1)
        assert a is b
        assert a is not c

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 2), (10.0, 3), (float("inf"), 4)
        ]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(56.2)

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_sent_total", "messages sent", replica=1).inc(7)
        registry.gauge("repro_depth", "queue depth", replica=1).set(3)
        histogram = registry.histogram("repro_lat", "latency", buckets=(1.0,))
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert '# TYPE repro_sent_total counter' in text
        assert 'repro_sent_total{replica="1"} 7' in text
        assert 'repro_depth{replica="1"} 3' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert 'repro_lat_count 1' in text

    def test_jsonl_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("repro_sent_total", src=1, dst=2).inc(9)
        registry.histogram("repro_lat", buckets=(1.0,)).observe(0.5)
        buffer = io.StringIO()
        count = registry.write_jsonl(buffer)
        buffer.seek(0)
        records = load_metrics_jsonl(buffer)
        assert len(records) == count == 2
        by_name = {record["name"]: record for record in records}
        assert by_name["repro_sent_total"]["value"] == 9
        assert by_name["repro_sent_total"]["labels"] == {"src": "1", "dst": "2"}
        assert by_name["repro_lat"]["count"] == 1
        assert by_name["repro_lat"]["buckets"][-1][0] == "+Inf"

    def test_fold_samples_counters_accumulate_deltas_gauges_keep_last(self):
        registry = MetricsRegistry()
        fold_samples(registry, [
            ("repro_sent_total", (("replica", "1"),), 10.0),
            ("repro_depth", (("replica", "1"),), 5.0),
        ])
        fold_samples(registry, [
            ("repro_sent_total", (("replica", "1"),), 25.0),
            ("repro_depth", (("replica", "1"),), 2.0),
        ])
        # Monotone growth within one node lifetime folds to the latest total.
        assert registry.counter("repro_sent_total", replica="1").value == 25.0
        assert registry.gauge("repro_depth", replica="1").value == 2.0
        # Series are independent: another replica's stream folds separately.
        fold_samples(registry, [
            ("repro_sent_total", (("replica", "2"),), 7.0),
        ])
        assert registry.counter("repro_sent_total", replica="1").value == 25.0
        assert registry.counter("repro_sent_total", replica="2").value == 7.0

    def test_fold_samples_restart_reset_accumulates_both_lifetimes(self):
        """A kill/restart resets a node's cumulative counters to zero.

        The fold must treat a decrease as a counter reset (Prometheus
        semantics) and keep accumulating, so post-restart traffic counts
        on top of the pre-restart total instead of hiding below the old
        high-water mark.
        """
        registry = MetricsRegistry()
        labels = (("replica", "1"),)
        # Pre-crash telemetry: cumulative totals grow 40 -> 100.
        fold_samples(registry, [("repro_node_sent_total", labels, 40.0)])
        fold_samples(registry, [("repro_node_sent_total", labels, 100.0)])
        # SIGKILL + restart: the counter resets to 0 and regrows to 60.
        fold_samples(registry, [("repro_node_sent_total", labels, 15.0)])
        fold_samples(registry, [("repro_node_sent_total", labels, 60.0)])
        # 100 messages before the crash plus 60 after.  A max() fold would
        # report 100, silently dropping all post-restart traffic.
        child = registry.counter("repro_node_sent_total", replica="1")
        assert child.value == 160.0

    def test_final_report_folds_after_telemetry_without_double_count(self):
        """A node's final report re-sends the same cumulative series its
        telemetry stream carried; folding it afterwards must add only the
        unseen tail, not the whole lifetime again."""
        from repro.obs.publish import publish_node_counters

        registry = MetricsRegistry()
        labels = (("replica", "3"),)
        fold_samples(registry, [("repro_node_sent_total", labels, 80.0)])
        # The final report caught 90 sends; only the last 10 are new.
        publish_node_counters(registry, 3, {"sent": 90})
        assert registry.counter("repro_node_sent_total", replica="3").value == 90.0
        # Restart-shaped report: smaller than the telemetry high-water mark
        # means a fresh lifetime — both lifetimes count.
        registry2 = MetricsRegistry()
        fold_samples(registry2, [("repro_node_sent_total", labels, 80.0)])
        publish_node_counters(registry2, 3, {"sent": 25})
        assert registry2.counter(
            "repro_node_sent_total", replica="3"
        ).value == 105.0


# ======================================================================
# Trace codec units
# ======================================================================

class TestTraceCodec:
    def test_jsonl_roundtrip_sorted(self):
        events = [
            (2.0, "apply", (1, 1), 1, 2),
            (0.0, "issue", (1, 1), 1, 1),
            (1.0, "deliver", (1, 1), 1, 2),
        ]
        buffer = io.StringIO()
        assert write_trace_jsonl(events, buffer) == 3
        buffer.seek(0)
        loaded = load_trace_jsonl(buffer)
        assert loaded == sorted(events)
        assert all(isinstance(event[2], tuple) for event in loaded)

    def test_untraced_run_records_nothing(self):
        graph = ShareGraph.from_placement(clique_placement(4))
        cluster = Cluster(graph, seed=0,
                          batching=BatchingConfig(max_messages=4, max_delay=1.0))
        assert cluster.tracer is None
        assert cluster.transport.tracer is None
        workload = single_writer_workload(graph, rate=3.0, duration=10.0, seed=0)
        run_open_loop(cluster, workload)
        assert cluster.metrics.applies > 0  # the run did real work


# ======================================================================
# The 64-replica acceptance run
# ======================================================================

@pytest.fixture(scope="module")
def traced_clique_run():
    graph = ShareGraph.from_placement(clique_placement(64))
    # On the full-replication clique the edge timestamp compresses to the
    # classical vector (Section 5) — the same replica the 64-replica
    # profiling and benchmark configurations run.
    cluster = Cluster(
        graph, seed=19,
        replica_factory=full_replication_factory,
        batching=BatchingConfig(max_messages=16, max_delay=2.0),
    )
    recorder = cluster.enable_tracing()
    # poisson_workload lets any storing replica write: on the one-register
    # clique a single-writer workload would concentrate all writes on
    # replica 1, and at R=64 a uniform op target rarely lands there.
    workload = poisson_workload(graph, rate=8.0, duration=30.0,
                                write_fraction=0.7, seed=19)
    result = run_open_loop(cluster, workload)
    assert result.consistent
    return cluster, recorder


class TestSixtyFourReplicaTrace:
    def test_chain_coverage_at_least_99_percent(self, traced_clique_run, tmp_path):
        cluster, recorder = traced_clique_run
        path = str(tmp_path / "trace.jsonl")
        written = write_trace_jsonl(recorder.events, path)
        assert written == len(recorder.events) > 0
        # The acceptance bar is judged on the dump alone: reload from disk.
        spans = assemble_spans(load_trace_jsonl(path))
        complete, applied = coverage(spans)
        # coverage() counts *remote* destination copies; metrics.applies
        # additionally counts the writer's local applies.
        assert 100 < applied <= cluster.metrics.applies
        assert complete / applied >= 0.99

    def test_stage_percentiles_reflect_the_configuration(self, traced_clique_run):
        _, recorder = traced_clique_run
        chains = complete_chains(assemble_spans(recorder.events))
        breakdown = stage_breakdown(chains)
        assert set(breakdown) == {
            "issue→send", "batch window", "transport", "pending wait",
            "end-to-end",
        }
        # The batching window is bounded by max_delay; the transport delay
        # by the default delay model; end-to-end dominates every stage.
        assert 0.0 < breakdown["batch window"].p99 <= 2.0 + 1e-9
        assert breakdown["transport"].p50 > 0.0
        assert breakdown["end-to-end"].p99 >= breakdown["transport"].p99

    def test_critical_paths_are_ranked_and_decomposed(self, traced_clique_run):
        _, recorder = traced_clique_run
        chains = complete_chains(assemble_spans(recorder.events))
        paths = critical_paths(chains, top=5)
        assert len(paths) == 5
        totals = [entry["total"] for entry in paths]
        assert totals == sorted(totals, reverse=True)
        for entry in paths:
            assert entry["total"] == pytest.approx(
                sum(entry["stages"].values())
            )

    def test_chrome_trace_export_is_structurally_valid(self, traced_clique_run,
                                                       tmp_path):
        _, recorder = traced_clique_run
        spans = assemble_spans(recorder.events)
        document = chrome_trace(spans, time_scale=1000.0)
        path = tmp_path / "trace_chrome.json"
        path.write_text(json.dumps(document))
        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        assert events, "empty Chrome export"
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 64  # one process_name per replica
        for event in complete:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["cat"] in (
                "issue→send", "batch window", "transport", "pending wait"
            )

    def test_registry_projection_and_byte_table(self, traced_clique_run,
                                                tmp_path):
        cluster, _ = traced_clique_run
        # bounds=False: |E_i| needs the exact loop enumeration, which is
        # intractable on a 64-clique (the run itself used the Section 5
        # vector compression for the same reason).
        registry = registry_for_sim(cluster, bounds=False)
        records = registry.snapshot()
        by_name = {
            (record["name"], tuple(sorted(record["labels"].items()))): record
            for record in records
        }
        applies = by_name[("repro_applies_total", ())]
        assert applies["value"] == cluster.metrics.applies
        latency = by_name[("repro_apply_latency", ())]
        assert latency["count"] == len(cluster.metrics.apply_latencies)
        path = str(tmp_path / "metrics.jsonl")
        registry.write_jsonl(path)
        rows = channel_byte_table(load_metrics_jsonl(path))
        assert rows
        for row in rows:
            assert row["messages"] > 0
            assert row["timestamp_bytes"] > 0

    def test_byte_table_carries_bounds_on_a_tractable_graph(self, tmp_path):
        """On a small clique the byte table joins shipped timestamp bytes
        with the sender's closed-form counter bound ``|E_i|``."""
        graph = ShareGraph.from_placement(clique_placement(6))
        cluster = Cluster(graph, seed=5,
                          batching=BatchingConfig(max_messages=8, max_delay=2.0))
        workload = single_writer_workload(graph, rate=4.0, duration=15.0, seed=5)
        run_open_loop(cluster, workload)
        registry = registry_for_sim(cluster)
        path = str(tmp_path / "metrics.jsonl")
        registry.write_jsonl(path)
        rows = channel_byte_table(load_metrics_jsonl(path))
        assert rows
        for row in rows:
            assert row["bound_counters"] is not None
            assert row["bytes_per_bound_counter"] > 0


# ======================================================================
# Per-epoch traffic books (the reconfiguration bytes-vs-bound reading)
# ======================================================================

class TestEpochByteTable:
    def test_every_epoch_respects_its_own_bound(self, tmp_path):
        """A reconfiguring run publishes one traffic book per epoch, and
        the realised counters-per-message stay within each epoch's own
        worst-sender ``|E_i|`` budget — the paper's bound read across a
        share-graph change, not just at the starting configuration."""
        placement = figure5_placement()
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(
            graph, delay_model=UniformDelay(1, 5), seed=11,
            wire_accounting=True,
        )
        manager = ReconfigManager(cluster, window=3.0)
        schedule = ReconfigSchedule("epoch-table", (
            add_edge(30.0, 1, 3, register="y"),
            remove_edge(60.0, 1, 3),
        ))
        manager.install(schedule)
        placements = schedule.placements_over(placement, window=3.0)
        workload = poisson_workload_dynamic(
            placements, rate=1.0, duration=100.0, seed=11
        )
        result = run_open_loop(cluster, workload)
        assert result.consistent
        assert cluster.metrics.reconfigs == 2

        registry = registry_for_sim(cluster, bounds=False)
        publish_epoch_segments(registry, manager.epoch_segments())
        path = str(tmp_path / "metrics.jsonl")
        registry.write_jsonl(path)

        rows = epoch_byte_table(load_metrics_jsonl(path))
        assert [row["epoch"] for row in rows] == [0, 1, 2]
        for previous, current in zip(rows[:-1], rows[1:]):
            assert previous["end"] == current["start"]
        busy = [row for row in rows if row["messages"]]
        assert busy
        for row in busy:
            assert row["replicas"] == 4
            assert row["timestamp_bytes"] > 0
            assert row["ts_bytes_per_message"] > 0.0
            assert row["bound_counters"] is not None
            assert row["bound_counters"] > 0
            assert 0.0 < row["counters_vs_bound"] <= 1.0

    def test_bounds_false_skips_the_enumeration(self, tmp_path):
        """``bounds=False`` publishes the books without the bound gauge."""
        placement = figure5_placement()
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(
            graph, delay_model=UniformDelay(1, 5), seed=3,
            wire_accounting=True,
        )
        manager = ReconfigManager(cluster, window=3.0)
        workload = single_writer_workload(graph, rate=2.0, duration=20.0, seed=3)
        run_open_loop(cluster, workload)
        registry = MetricsRegistry()
        publish_epoch_segments(registry, manager.epoch_segments(), bounds=False)
        rows = epoch_byte_table(registry.snapshot())
        assert [row["epoch"] for row in rows] == [0]
        assert rows[0]["messages"] > 0
        assert rows[0]["bound_counters"] is None
        assert rows[0]["counters_vs_bound"] is None


# ======================================================================
# Both architectures, both topologies (the E19 matrix in miniature)
# ======================================================================

@pytest.mark.parametrize("placement_factory", [
    lambda: clique_placement(8),
    lambda: tree_placement(8),
], ids=["clique", "tree"])
def test_tracing_covers_p2p_topologies(placement_factory):
    graph = ShareGraph.from_placement(placement_factory())
    cluster = Cluster(graph, seed=7,
                      batching=BatchingConfig(max_messages=8, max_delay=2.0))
    recorder = cluster.enable_tracing()
    workload = single_writer_workload(graph, rate=4.0, duration=20.0, seed=7)
    result = run_open_loop(cluster, workload)
    assert result.consistent
    spans = assemble_spans(recorder.events)
    complete, applied = coverage(spans)
    assert applied > 0
    assert complete / applied >= 0.99


def test_tracing_covers_client_server_architecture():
    from repro.clientserver.cluster import ClientServerCluster

    graph = ShareGraph.from_placement(clique_placement(6))
    cluster = ClientServerCluster.with_colocated_clients(
        graph, seed=11,
        batching=BatchingConfig(max_messages=8, max_delay=2.0),
    )
    recorder = cluster.enable_tracing()
    workload = single_writer_workload(graph, rate=4.0, duration=20.0, seed=11)
    result = run_open_loop(cluster, workload)
    assert result.consistent
    spans = assemble_spans(recorder.events)
    complete, applied = coverage(spans)
    assert applied > 0
    assert complete / applied >= 0.99
