"""Property tests for the live runtime's stream framing and control codecs.

The framing contract is the foundation the whole live runtime stands on:
**any** fragmentation or coalescing of an encoded frame sequence must
decode to the identical frame list.  Hypothesis drives the incremental
:class:`~repro.net.framing.StreamDecoder` with arbitrary chunk boundaries —
byte-at-a-time, coalesced, and randomly partitioned — against
``decode ∘ encode = id``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import frames
from repro.net.framing import (
    MAX_FRAME_SIZE,
    StreamDecoder,
    decode_all,
    encode_frame,
)
from repro.wire.primitives import WireFormatError

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

frame_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=300),
    ),
    max_size=20,
)


def chunkings(data: bytes):
    """Strategy: cut points partitioning ``data`` into arbitrary chunks."""
    return st.lists(
        st.integers(min_value=0, max_value=len(data)), max_size=30
    ).map(lambda cuts: sorted(set(cuts)))


# ----------------------------------------------------------------------
# decode ∘ encode = id under arbitrary chunking
# ----------------------------------------------------------------------

@given(frame_lists, st.data())
@settings(max_examples=200)
def test_arbitrary_fragmentation_roundtrips(items, data):
    encoded = b"".join(encode_frame(kind, payload) for kind, payload in items)
    cuts = data.draw(chunkings(encoded))
    bounds = [0] + cuts + [len(encoded)]
    decoder = StreamDecoder()
    out = []
    for start, end in zip(bounds, bounds[1:]):
        out.extend(decoder.feed(encoded[start:end]))
    assert out == items
    assert decoder.at_boundary()


@given(frame_lists)
def test_byte_at_a_time_roundtrips(items):
    encoded = b"".join(encode_frame(kind, payload) for kind, payload in items)
    decoder = StreamDecoder()
    out = []
    for index in range(len(encoded)):
        out.extend(decoder.feed(encoded[index:index + 1]))
    assert out == items
    assert decoder.at_boundary()


@given(frame_lists)
def test_fully_coalesced_roundtrips(items):
    encoded = b"".join(encode_frame(kind, payload) for kind, payload in items)
    assert decode_all(encoded) == items


@given(frame_lists, frame_lists)
def test_streams_concatenate(first, second):
    """Two encoded streams back to back decode to the concatenated lists."""
    encoded = b"".join(
        encode_frame(kind, payload) for kind, payload in first + second
    )
    assert decode_all(encoded) == first + second


# ----------------------------------------------------------------------
# Error handling
# ----------------------------------------------------------------------

def test_truncated_stream_is_not_a_boundary():
    data = encode_frame(7, b"abcdef")
    decoder = StreamDecoder()
    assert decoder.feed(data[:-2]) == []
    assert not decoder.at_boundary()
    assert decoder.feed(data[-2:]) == [(7, b"abcdef")]
    assert decoder.at_boundary()


def test_decode_all_rejects_trailing_partial_frame():
    data = encode_frame(7, b"abcdef")
    with pytest.raises(WireFormatError):
        decode_all(data + data[:3])


def test_zero_length_frame_rejected():
    # A length prefix of zero can never hold the mandatory kind byte.
    with pytest.raises(WireFormatError):
        StreamDecoder().feed(b"\x00")


def test_oversized_frame_rejected_at_encode_and_decode():
    with pytest.raises(WireFormatError):
        encode_frame(1, b"x" * MAX_FRAME_SIZE)
    # A length prefix beyond the cap is rejected before buffering.
    from repro.wire.primitives import encode_uvarint

    with pytest.raises(WireFormatError):
        StreamDecoder().feed(encode_uvarint(MAX_FRAME_SIZE + 1))


def test_unterminated_length_prefix_rejected():
    with pytest.raises(WireFormatError):
        StreamDecoder().feed(b"\xff\xff\xff\xff\xff")


def test_frame_kind_must_fit_one_byte():
    with pytest.raises(WireFormatError):
        encode_frame(256, b"")


# ----------------------------------------------------------------------
# Control-frame codecs ride the same primitives
# ----------------------------------------------------------------------

uid_lists = st.lists(
    st.tuples(
        st.one_of(st.integers(min_value=0, max_value=10_000), st.text(max_size=8)),
        st.integers(min_value=0, max_value=1 << 40),
    ),
    max_size=50,
)


@given(uid_lists)
def test_uid_list_roundtrip(uids):
    data = frames.encode_uid_list(uids)
    decoded, offset = frames.decode_uid_list(data)
    assert decoded == uids
    assert offset == len(data)


@given(
    st.integers(min_value=0, max_value=1 << 32),
    st.one_of(st.integers(min_value=0, max_value=500), st.text(max_size=8)),
    st.sampled_from(["write", "read"]),
    st.one_of(st.integers(min_value=0, max_value=1000), st.text(max_size=16)),
    st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
              st.text(max_size=64), st.binary(max_size=64)),
)
def test_op_roundtrip(op_id, replica, kind, register, value):
    decoded = frames.decode_op(
        frames.encode_op(op_id, replica, kind, register, value)
    )
    assert decoded == (op_id, replica, kind, register, value)


def test_hello_addr_and_stats_roundtrip():
    assert frames.decode_hello(frames.encode_hello("n3", 61234)) == ("n3", 61234)
    assert frames.decode_addr(frames.encode_addr("n9", "127.0.0.1", 8080)) == (
        "n9", "127.0.0.1", 8080
    )
    stats = frames.NodeStats(ops_done=5, issued=2, enqueued=6, sent=6,
                             received=4, delivered=4, applied=6, pending=0,
                             send_queue=0, unacked=2, duplicates=1,
                             retransmissions=1, resyncs=0)
    outbox, inbox = {(1, 2): 3, (1, "r9"): 1}, {(4, 1): 2}
    payload = frames.encode_stats_payload(stats, outbox, inbox)
    decoded_stats, decoded_outbox, decoded_inbox = frames.decode_stats_payload(
        payload
    )
    assert decoded_stats == stats
    assert decoded_outbox == outbox
    assert decoded_inbox == inbox


def test_tagged_uid_roundtrip():
    uids = [(1, 3), (2, 1), ("w", 9)]
    replica, decoded = frames.decode_tagged_uids(
        frames.encode_tagged_uids("r7", uids)
    )
    assert replica == "r7"
    assert decoded == uids


def test_op_reply_roundtrip():
    payload = frames.encode_op_reply(17, frames.OP_OK, "value")
    assert frames.decode_op_reply(payload) == (17, frames.OP_OK, "value")


# ----------------------------------------------------------------------
# Multiplexed channel streams: many channels, one byte stream
# ----------------------------------------------------------------------

#: Replicas 1..3 on one side, "a"/"b" on the other: every ordered pair is
#: a distinct channel that may share the host-pair stream.
_MUX_CHANNELS = [
    (src, dst)
    for src in (1, 2, 3)
    for dst in ("a", "b")
] + [("a", 1), ("b", 2)]


def _mux_message(channel, seq):
    from repro.core.protocol import Update, UpdateMessage
    from repro.core.timestamps import EdgeTimestamp

    src, dst = channel
    ts = EdgeTimestamp({(src, dst): seq})
    return UpdateMessage(
        update=Update(issuer=src, seq=seq, register="x", value=f"{src}:{seq}"),
        sender=src,
        destination=dst,
        metadata=ts,
        metadata_size=ts.size_counters(),
        payload=True,
    )


@given(
    picks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(_MUX_CHANNELS) - 1),
            st.integers(min_value=1, max_value=4),
        ),
        max_size=25,
    ),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_multiplexed_channels_survive_arbitrary_fragmentation(picks, data):
    """The host-pair stream contract (PR 8): BATCH frames from many
    channels interleave on one byte stream — one shared delta
    encoder/decoder pair, channel-keyed chains — and under *arbitrary*
    fragmentation/coalescing the receiver recovers exactly each channel's
    message sequence, in order, with contiguous per-channel batch seqs."""
    from repro.wire.batch import MessageBatch, decode_batch, encode_batch
    from repro.wire.channel import ChannelDeltaDecoder, ChannelDeltaEncoder

    # Sender side: one encoder for the whole stream, per-channel counters.
    encoder = ChannelDeltaEncoder()
    sent = {}          # channel -> [messages in send order]
    batch_seq = {}     # channel -> next batch seq
    stream = bytearray()
    for index, size in picks:
        channel = _MUX_CHANNELS[index]
        window = []
        for _ in range(size):
            seq = len(sent.get(channel, ())) + 1
            message = _mux_message(channel, seq)
            sent.setdefault(channel, []).append(message)
            window.append(message)
        batch = MessageBatch(
            sender=channel[0], destination=channel[1],
            seq=batch_seq.get(channel, 0), messages=tuple(window),
        )
        batch_seq[channel] = batch.seq + 1
        payload, _ = encode_batch(batch, encoder=encoder)
        stream += encode_frame(frames.BATCH, payload)

    # Receiver side: arbitrary chunk boundaries, one decoder for the
    # stream, frames demultiplexed by the batch's self-described channel.
    cuts = data.draw(chunkings(bytes(stream)))
    bounds = [0] + cuts + [len(stream)]
    stream_decoder = StreamDecoder()
    delta_decoder = ChannelDeltaDecoder()
    received = {}
    seqs_seen = {}
    for start, end in zip(bounds, bounds[1:]):
        for kind, payload in stream_decoder.feed(bytes(stream[start:end])):
            assert kind == frames.BATCH
            batch, consumed = decode_batch(bytes(payload), decoder=delta_decoder)
            assert consumed == len(payload)
            seqs_seen.setdefault(batch.channel, []).append(batch.seq)
            received.setdefault(batch.channel, []).extend(batch.messages)

    assert stream_decoder.at_boundary()
    assert received == {channel: msgs for channel, msgs in sent.items()}
    for channel, seqs in seqs_seen.items():
        assert seqs == list(range(len(seqs)))
