"""Unit tests for the analysis/evaluation harness (repro.analysis)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    edge_label,
    exp_compression,
    exp_conflict_bound,
    exp_figure5,
    exp_helary_milani,
    exp_lower_bounds,
    exp_ring_breaking,
    oblivious_factory,
    protocol_suite,
    render_compression,
    render_figure5,
    render_helary_milani,
    render_lower_bounds,
    render_mapping,
    render_ring_breaking,
    render_table,
    standard_topologies,
)
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import timestamp_edges
from repro.sim.topologies import figure5_placement


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["long-cell", {3, 1}]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.50" in text
        assert "1, 3" in text

    def test_render_mapping(self):
        text = render_mapping("title", {"k": 1})
        assert text.startswith("title")
        assert "k" in text

    def test_edge_label(self):
        assert edge_label((4, 3)) == "e_43"


class TestExperimentHarness:
    def test_standard_topologies_all_connected(self):
        topologies = standard_topologies()
        assert len(topologies) >= 10
        for placement in topologies.values():
            assert ShareGraph.from_placement(placement).is_connected()

    def test_protocol_suite_contains_paper_and_baselines(self):
        suite = protocol_suite()
        assert "edge-indexed (paper)" in suite
        assert len(suite) >= 5

    def test_exp_figure5_and_render(self):
        result = exp_figure5()
        assert result.replica1_edges == timestamp_edges(
            ShareGraph.from_placement(figure5_placement()), 1
        )
        text = render_figure5(result)
        assert "e_43" in text

    def test_exp_helary_milani_and_render(self):
        results = exp_helary_milani()
        assert len(results) == 2
        text = render_helary_milani(results)
        assert "counterexample 1" in text and "counterexample 2" in text

    def test_exp_lower_bounds_tight_and_render(self):
        rows = exp_lower_bounds(max_updates=8)
        for row in rows:
            assert row.algorithm_bits == pytest.approx(row.lower_bound_bits)
        assert "ring6" in render_lower_bounds(rows)

    def test_exp_conflict_bound_matches_closed_form(self):
        result = exp_conflict_bound(max_updates=2)
        assert result.bits == pytest.approx(result.closed_form_bits)

    def test_exp_compression_and_render(self):
        result = exp_compression()
        assert result["clique4"] == (48, 16)
        assert "clique4" in render_compression(result)

    def test_exp_ring_breaking_and_render(self):
        rows = exp_ring_breaking(sizes=(4, 5))
        assert rows[0]["counters before"] == 32
        assert "ring size" in render_ring_breaking(rows)

    def test_oblivious_factory_drops_requested_edges_only(self):
        graph = ShareGraph.from_placement(figure5_placement())
        factory = oblivious_factory({1: frozenset({(4, 3)})})
        replica1 = factory(graph, 1)
        replica2 = factory(graph, 2)
        assert (4, 3) not in replica1.timestamp_graph.edges
        assert replica1.timestamp_graph.edges == timestamp_edges(graph, 1) - {(4, 3)}
        assert replica2.timestamp_graph.edges == timestamp_edges(graph, 2)
