"""Tests for the fault-injection subsystem (repro.sim.faults).

Covers the acceptance scenarios: crash-restart-recover and partition-heal on
both architectures pass the trace-based consistency checker, a full fault
schedule replays deterministically under one seed, and lossy/duplicating
channels stay exactly-once at the protocol layer through the transport's
ack/resend reliability layer.
"""

from __future__ import annotations

import pytest

from repro.clientserver import ClientServerCluster
from repro.core.errors import ConfigurationError, ProtocolError, SimulationError
from repro.core.registers import RegisterPlacement
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster, build_cluster
from repro.sim.delays import DuplicatingDelay, FixedDelay, LossyDelay, UniformDelay
from repro.sim.engine import ReliabilityConfig
from repro.sim.faults import (
    FaultInjector,
    FaultSchedule,
    crash,
    heal,
    latency_spike,
    partition,
    random_fault_schedule,
    restart,
)
from repro.sim.workloads import (
    Operation,
    poisson_workload,
    run_open_loop,
    run_workload,
    uniform_workload,
)


def path_graph() -> ShareGraph:
    """The Figure 3 path: 1-{x}-2-{y}-3-{z}-4."""
    return ShareGraph.from_placement(
        RegisterPlacement.from_dict({1: {"x"}, 2: {"x", "y"}, 3: {"y", "z"}, 4: {"z"}})
    )


def drive_operations(cluster, operations, start=1.0, gap=1.0):
    """Schedule replica-addressed operations open-loop at fixed times."""
    for index, operation in enumerate(operations):
        cluster.schedule_arrival_at(start + index * gap, operation)


# ----------------------------------------------------------------------
# Fault schedules (declarative layer)
# ----------------------------------------------------------------------

class TestFaultSchedule:
    def test_actions_sorted_by_time(self):
        schedule = FaultSchedule("s", (restart(30.0, 1), crash(10.0, 1)))
        assert [a.kind for a in schedule.actions] == ["crash", "restart"]
        assert schedule.duration == 30.0

    def test_latency_spike_pair_accepted_inline(self):
        schedule = FaultSchedule("s", (latency_spike(5.0, 10.0, 4.0),))
        assert [a.kind for a in schedule.actions] == ["slowdown", "slowdown"]
        assert schedule.actions[0].factor == 4.0
        assert schedule.actions[1].factor == 1.0
        assert schedule.actions[1].time == 15.0

    def test_partition_requires_two_groups(self):
        with pytest.raises(ConfigurationError):
            partition(1.0, {1, 2})

    def test_random_schedule_deterministic(self):
        a = random_fault_schedule([1, 2, 3, 4], 100.0, crashes=2,
                                  partition_duration=20.0, seed=5)
        b = random_fault_schedule([1, 2, 3, 4], 100.0, crashes=2,
                                  partition_duration=20.0, seed=5)
        assert a == b
        assert sum(1 for act in a.actions if act.kind == "crash") == 2
        assert sum(1 for act in a.actions if act.kind == "restart") == 2

    def test_random_schedule_rejects_too_many_crashes(self):
        with pytest.raises(ConfigurationError):
            random_fault_schedule([1, 2], 100.0, crashes=3)


# ----------------------------------------------------------------------
# Snapshot / restore (the durable half of crash recovery)
# ----------------------------------------------------------------------

class TestSnapshotRestore:
    def test_roundtrip_restores_exact_state(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=0)
        cluster.write(2, "x", "x1")
        cluster.run_until_quiescent()
        replica = cluster.replica(2)
        snapshot = replica.snapshot()
        # Mutate past the snapshot point…
        cluster.write(2, "y", "y1")
        assert replica.store["y"] == "y1"
        # …and roll back.
        replica.restore(snapshot)
        assert replica.store["y"] is None
        assert replica.store["x"] == "x1"
        assert replica.issued_count == 1
        assert len(replica.events) == 1

    def test_snapshot_shares_no_structure(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=0)
        replica = cluster.replica(2)
        snapshot = replica.snapshot()
        replica.store["x"] = "mutated"
        assert snapshot.state["store"]["x"] is None

    def test_restore_wrong_replica_rejected(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=0)
        snapshot = cluster.replica(2).snapshot()
        with pytest.raises(ProtocolError):
            cluster.replica(3).restore(snapshot)

    def test_client_server_volatile_requests_not_persisted(self):
        graph = path_graph()
        cluster = ClientServerCluster.with_colocated_clients(
            graph, delay_model=FixedDelay(1.0), seed=0
        )
        server = cluster.servers[2]
        snapshot = server.snapshot()
        assert "waiting_requests" not in snapshot.state
        assert "completed_responses" not in snapshot.state
        server.restore(snapshot)
        assert server.waiting_requests == []
        assert server.completed_responses == []


# ----------------------------------------------------------------------
# Crash → restart → recover (acceptance scenario, both architectures)
# ----------------------------------------------------------------------

class TestCrashRecovery:
    def test_crash_restart_recover_peer_to_peer(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(2.0), seed=1)
        injector = FaultInjector(cluster)
        injector.install(
            FaultSchedule("crash3", (crash(5.0, 3), restart(30.0, 3)))
        )
        # Replica 3 misses the y-writes issued while it is down…
        drive_operations(cluster, [
            Operation("write", 2, "y", "y-before"),   # t=1, lands at 3
            Operation("write", 2, "y", "y-during"),   # t=2, lost at t=4? no: t=4 < 5
            Operation("write", 2, "y", "y-down-1"),   # t=3 … delivered t=5 -> lost
            Operation("write", 2, "y", "y-down-2"),   # t=4 … delivered t=6 -> lost
            Operation("write", 3, "z", "z-after"),    # t=40, after recovery
        ], start=1.0, gap=1.0)
        cluster.schedule_arrival_at(40.0, Operation("write", 3, "z", "z-final"))
        cluster.run_until_quiescent()

        assert cluster.network.stats.messages_lost_to_crash > 0
        report = cluster.check_consistency()
        assert report.is_causally_consistent
        # The restarted replica caught up via the anti-entropy resync.
        assert cluster.replica(3).store["y"] == "y-down-2"
        assert cluster.metrics.crashes == 1
        assert cluster.metrics.restarts == 1
        assert len(cluster.metrics.recovery_latencies) == 1
        assert cluster.metrics.downtime[3] == [(5.0, 30.0)]

    def test_crash_rejects_operations_while_down(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=1)
        injector = FaultInjector(cluster)
        injector.crash_now(3)
        assert cluster.write(3, "y", "nope") is None
        assert cluster.read(3, "z") is None
        assert cluster.metrics.rejected_operations == 2
        injector.restart_now(3)
        assert cluster.write(3, "y", "yes") is not None

    def test_crash_restart_recover_client_server(self):
        graph = path_graph()
        cluster = ClientServerCluster.with_colocated_clients(
            graph, delay_model=FixedDelay(2.0), seed=1
        )
        injector = FaultInjector(cluster)
        injector.install(
            FaultSchedule("crash3", (crash(5.0, 3), restart(30.0, 3)))
        )
        drive_operations(cluster, [
            Operation("write", 2, "y", "y1"),
            Operation("write", 2, "y", "y2"),
            Operation("write", 2, "y", "y3"),
            Operation("write", 2, "y", "y4"),
        ], start=1.0, gap=1.0)
        cluster.schedule_arrival_at(45.0, Operation("read", 3, "y"))
        cluster.run_until_quiescent()

        report = cluster.check_consistency()
        assert report.is_causally_consistent
        assert cluster.servers[3].store["y"] == "y4"
        assert cluster.metrics.crashes == 1
        assert cluster.metrics.restarts == 1

    def test_client_server_rejects_operations_on_down_server(self):
        graph = path_graph()
        cluster = ClientServerCluster.with_colocated_clients(
            graph, delay_model=FixedDelay(1.0), seed=1
        )
        injector = FaultInjector(cluster)
        injector.crash_now(2)
        assert cluster.client_write("c2", "y", "nope", replica_id=2) is None
        assert cluster.client_read("c2", "y", replica_id=2) is None
        assert cluster.metrics.rejected_operations == 2
        injector.restart_now(2)
        issued = cluster.client_write("c2", "y", "yes", replica_id=2)
        assert issued is not None and issued.register == "y"

    def test_client_server_crash_during_blocked_request_rejects(self):
        # A roaming client whose request is buffered behind J1/J2 when the
        # server crashes sees the operation rejected (None), not a
        # SimulationError — the buffered request is volatile server state.
        from repro.clientserver import ClientAssignment

        graph = path_graph()
        cluster = ClientServerCluster(
            graph,
            ClientAssignment.from_dict({"c1": {3, 4}, "c2": {3}}),
            delay_model=FixedDelay(1.0),
            seed=0,
        )
        injector = FaultInjector(cluster)
        cluster.network.hold(3, 4)
        # c2's write at 3 bumps the 3->4 edge; the update to 4 is parked.
        cluster.client_write("c2", "z", "z1", replica_id=3)
        # c1 observes it at 3, so its next request at 4 blocks on J1/J2.
        assert cluster.client_read("c1", "z", replica_id=3) == "z1"
        cluster.schedule_fault_at(
            5.0, lambda host, time: injector.crash_now(4), kind="crash"
        )
        assert cluster.client_write("c1", "z", "z2", replica_id=4) is None
        assert cluster.metrics.rejected_operations == 1
        assert injector.is_down(4)

    def test_injector_misuse_raises(self):
        graph = path_graph()
        cluster = build_cluster(graph, seed=0)
        injector = FaultInjector(cluster)
        with pytest.raises(ConfigurationError):
            FaultInjector(cluster)  # double attach
        with pytest.raises(SimulationError):
            injector.restart_now(1)  # not down
        injector.crash_now(1)
        with pytest.raises(SimulationError):
            injector.crash_now(1)  # already down

    def test_resync_requires_sent_log(self):
        graph = path_graph()
        cluster = build_cluster(graph, seed=0)  # no injector → no sent log
        with pytest.raises(SimulationError):
            cluster.transport.resync(1, set())

    def test_finalize_downtime_and_availability(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=0)
        injector = FaultInjector(cluster)
        injector.install(FaultSchedule("down", (crash(10.0, 4),)))
        cluster.schedule_arrival_at(50.0, Operation("write", 1, "x", "x1"))
        cluster.run_until_quiescent(max_steps=10_000)
        injector.finalize_downtime()
        # Replica 4 went down at t=10 and never came back: within the
        # 50-unit horizon it was up for the first 10 units only.
        availability = cluster.metrics.availability(50.0, graph.replica_ids)
        assert availability[4] == pytest.approx(0.2)
        assert availability[1] == 1.0


# ----------------------------------------------------------------------
# Partition → heal (acceptance scenario, both architectures)
# ----------------------------------------------------------------------

class TestPartitionHeal:
    def test_partition_heal_peer_to_peer(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(2.0), seed=1)
        injector = FaultInjector(cluster)
        injector.install(
            FaultSchedule("split", (partition(0.5, {1, 2}, {3, 4}), heal(40.0)))
        )
        drive_operations(cluster, [
            Operation("write", 2, "y", "y-split"),   # y crosses the cut to 3
            Operation("write", 3, "z", "z-split"),   # z crosses the cut to 4? no: 3,4 same side
            Operation("write", 2, "x", "x-split"),   # x stays inside {1,2}
        ], start=1.0, gap=1.0)
        cluster.run_until_quiescent()

        report = cluster.check_consistency()
        assert report.is_causally_consistent
        assert cluster.replica(3).store["y"] == "y-split"
        # The cross-cut apply waited out the partition: staleness ≥ heal - issue.
        assert max(cluster.metrics.apply_latencies) >= 39.0
        kinds = [record.kind for record in cluster.metrics.fault_timeline]
        assert kinds == ["partition", "heal"]

    def test_partition_heal_client_server(self):
        graph = path_graph()
        cluster = ClientServerCluster.with_colocated_clients(
            graph, delay_model=FixedDelay(2.0), seed=1
        )
        injector = FaultInjector(cluster)
        injector.install(
            FaultSchedule("split", (partition(0.5, {1, 2}, {3, 4}), heal(40.0)))
        )
        drive_operations(cluster, [
            Operation("write", 2, "y", "y-split"),
            Operation("write", 3, "z", "z-split"),
            Operation("write", 2, "x", "x-split"),
        ], start=1.0, gap=1.0)
        cluster.run_until_quiescent()

        report = cluster.check_consistency()
        assert report.is_causally_consistent
        assert cluster.servers[3].store["y"] == "y-split"
        assert max(cluster.metrics.apply_latencies) >= 39.0

    def test_unlisted_replicas_form_rest_island(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=1)
        # Isolate {2} from everyone; 1, 3, 4 stay mutually connected.
        cluster.network.partition({2}, {1})
        cluster.write(3, "z", "z1")          # 3 -> 4 unaffected
        cluster.write(2, "y", "y1")          # 2 -> 3 parked
        cluster.run_until_quiescent()
        assert cluster.replica(4).store["z"] == "z1"
        assert cluster.replica(3).store["y"] is None
        assert cluster.network.held_count == 1
        cluster.network.heal()
        cluster.run_until_quiescent()
        assert cluster.replica(3).store["y"] == "y1"


# ----------------------------------------------------------------------
# Lossy / duplicating channels + the reliability layer (exactly-once)
# ----------------------------------------------------------------------

class TestLossyChannels:
    def make_cluster(self, seed=7):
        graph = path_graph()
        model = DuplicatingDelay(
            inner=LossyDelay(inner=UniformDelay(1, 10), drop_probability=0.3),
            duplicate_probability=0.25,
        )
        cluster = build_cluster(graph, delay_model=model, seed=seed)
        FaultInjector(
            cluster,
            reliability=ReliabilityConfig(resend_timeout=20.0, max_retries=5),
        )
        return cluster

    def test_exactly_once_through_loss_and_duplication(self):
        cluster = self.make_cluster()
        graph = cluster.share_graph
        workload = uniform_workload(graph, 120, seed=3)
        result = run_workload(cluster, workload, interleave_steps=1)
        assert result.consistent
        stats = cluster.network.stats
        assert stats.messages_dropped > 0
        assert stats.messages_duplicated > 0
        assert stats.retransmissions > 0
        # The protocol layer suppressed every duplicate delivery…
        assert sum(r.duplicates_ignored for r in cluster.replicas.values()) > 0
        # …so no replica applied any update twice.
        for replica in cluster.replicas.values():
            uids = [u.uid for u in replica.applied]
            assert len(uids) == len(set(uids))

    def test_loss_without_reliability_breaks_liveness(self):
        graph = path_graph()
        model = LossyDelay(inner=FixedDelay(1.0), drop_probability=1.0)
        cluster = build_cluster(graph, delay_model=model, seed=0)
        cluster.write(2, "y", "y1")
        cluster.run_until_quiescent()
        report = cluster.check_consistency()
        assert not report.is_live  # documents why the reliability layer exists

    def test_retransmission_covers_downtime_without_resync(self):
        # A message dropped on a crashed destination is re-sent by the
        # resend timer after the restart — the ack/resend layer alone
        # recovers it even though the resync also would.
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(1.0), seed=0)
        injector = FaultInjector(
            cluster, reliability=ReliabilityConfig(resend_timeout=5.0, max_retries=10)
        )
        injector.install(FaultSchedule("blip", (crash(1.5, 3), restart(3.0, 3))))
        cluster.schedule_arrival_at(1.0, Operation("write", 2, "y", "y1"))
        cluster.run_until_quiescent()
        assert cluster.replica(3).store["y"] == "y1"
        assert cluster.check_consistency().is_causally_consistent


# ----------------------------------------------------------------------
# Latency spikes
# ----------------------------------------------------------------------

class TestLatencySpike:
    def test_spike_scales_delays_then_recovers(self):
        graph = path_graph()
        cluster = build_cluster(graph, delay_model=FixedDelay(2.0), seed=0)
        injector = FaultInjector(cluster)
        injector.install(FaultSchedule("spike", (latency_spike(5.0, 10.0, 10.0),)))
        cluster.schedule_arrival_at(6.0, Operation("write", 2, "y", "slow"))
        cluster.schedule_arrival_at(30.0, Operation("write", 2, "y", "fast"))
        cluster.run_until_quiescent()
        latencies = cluster.metrics.apply_latencies
        assert max(latencies) == pytest.approx(20.0)   # 2.0 × 10
        assert min(latencies) == pytest.approx(2.0)    # back to normal


# ----------------------------------------------------------------------
# Same-seed determinism of a full fault schedule (acceptance criterion)
# ----------------------------------------------------------------------

class TestDeterminism:
    @staticmethod
    def fingerprint(host):
        metrics = host.metrics
        return (
            metrics.applies,
            tuple(metrics.apply_times),
            tuple(metrics.apply_latencies),
            metrics.rejected_operations,
            tuple(metrics.recovery_latencies),
            tuple((r.time, r.kind, r.detail) for r in metrics.fault_timeline),
            {rid: dict(sorted(metrics.downtime.items())).get(rid)
             for rid in metrics.downtime},
            host.network.stats.messages_dropped,
            host.network.stats.messages_duplicated,
            host.network.stats.retransmissions,
            host.network.stats.messages_lost_to_crash,
            {rid: tuple((e.kind, e.update.uid if e.update else None, e.sim_time)
                        for e in events)
             for rid, events in host.events_by_replica().items()},
        )

    def run_full_schedule(self, architecture: str, seed: int):
        graph = path_graph()
        model = DuplicatingDelay(
            inner=LossyDelay(inner=UniformDelay(1, 8), drop_probability=0.15),
            duplicate_probability=0.15,
        )
        if architecture == "peer-to-peer":
            host = Cluster(graph, delay_model=model, seed=seed)
        else:
            host = ClientServerCluster.with_colocated_clients(
                graph, delay_model=model, seed=seed
            )
        injector = FaultInjector(
            host, reliability=ReliabilityConfig(resend_timeout=15.0, max_retries=6)
        )
        schedule = FaultSchedule("full", (
            crash(20.0, 3),
            restart(45.0, 3),
            partition(60.0, {1, 2}, {3, 4}),
            heal(85.0),
            latency_spike(95.0, 10.0, 5.0),
        ))
        injector.install(schedule)
        workload = poisson_workload(graph, rate=1.0, duration=110.0, seed=seed)
        result = run_open_loop(host, workload)
        assert result.consistent
        return self.fingerprint(host)

    @pytest.mark.parametrize("architecture", ["peer-to-peer", "client-server"])
    def test_same_seed_same_execution(self, architecture):
        first = self.run_full_schedule(architecture, seed=11)
        second = self.run_full_schedule(architecture, seed=11)
        assert first == second

    def test_different_seed_differs(self):
        assert (self.run_full_schedule("peer-to-peer", seed=11)
                != self.run_full_schedule("peer-to-peer", seed=12))
