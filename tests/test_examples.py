"""Smoke tests: every example script runs to completion and keeps its promises."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["Timestamp graphs", "Checker verdict", "0 safety violation"],
    "social_network.py": ["ACL", "Checker verdict", "0 safety violation"],
    "geo_store_client_server.py": ["client-server", "Checker verdict"],
    "metadata_explorer.py": ["Figure 5 timestamp graphs", "Topology survey"],
    "optimization_tradeoffs.py": ["Compression", "Dummy registers", "Bounded loop length"],
    "open_loop_throughput.py": [
        "Open-loop workloads",
        "apply latency",
        "peak pending-buffer depth",
        "passed the consistency checker",
    ],
    "chaos_recovery.py": [
        "Chaos recovery",
        "Crash and recovery",
        "recovery latency",
        "Partition and heal",
        "exactly-once holds",
        "All three chaos scenarios passed the consistency checker.",
    ],
    "live_cluster.py": [
        "phase 1:",
        "killed the node hosting replica 2",
        "restarted the node from its write-ahead log",
        "causally consistent: True",
        "open connections:",
        "none — resync converged",
    ],
    "adaptive_controller.py": [
        "Drifting hotspot",
        "controller decisions",
        "compression lever pulled: True",
        "per-epoch metadata traffic",
        "adaptive vs static",
        "both runs passed the consistency checker",
    ],
    "wire_overhead.py": [
        "Anatomy of one update message",
        "round trip: decode(encode(message)) == message",
        "delta frames",
        "per-channel bytes",
        "E16",
        "All wire-layer runs passed the consistency checker.",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_and_prints_expected_sections(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for needle in EXPECTED_OUTPUT[script]:
        assert needle in completed.stdout, (
            f"{script} output does not mention {needle!r}"
        )
