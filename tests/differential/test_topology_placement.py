"""Differential case: a placement-derived GEANT share graph, sim vs live.

The topology/placement layer emits the share graph instead of a
hand-picked shape: the availability-aware policy places registers on the
GEANT-like measured map, and the resulting
:meth:`~repro.placement.base.PlacementResult.live_placement` pins each
replica to the OS process standing in for its topology site through the
live runtime's explicit ``placement=`` hook.  The same seeded
single-writer workload must then produce identical consistency verdicts,
final register state and per-channel first-receipt streams in the
simulator and the live TCP cluster — co-hosted site channels
short-circuit in process, so only the wire books shrink.
"""

from __future__ import annotations

import pytest

from repro.placement import AvailabilityAwarePlacement, PlacementSpec
from repro.topo import geant_like

from .harness import run_differential


@pytest.fixture(scope="module")
def geant_result():
    spec = PlacementSpec.make(
        geant_like(),
        num_replicas=6,
        num_registers=9,
        replication_factor=2,
        capacity=5,
    )
    return AvailabilityAwarePlacement().place(spec, seed=9)


def test_placement_derived_share_graph_sim_vs_live(geant_result, tmp_path):
    result = geant_result
    node_placement = result.live_placement()
    # The placement hook is exercised for real: node names are topology
    # sites and together they partition the replicas.
    assert set(node_placement) <= set(result.topology.nodes)
    assert sorted(
        rid for rids in node_placement.values() for rid in rids
    ) == sorted(result.share_graph.replica_ids)

    sim, live = run_differential(
        result.placement, seed=13, rate=4.0, duration=40.0,
        durable_dir=str(tmp_path), node_placement=node_placement,
    )
    assert sim.streams, "workload produced no cross-replica traffic"


def test_placement_live_placement_covers_every_register(geant_result):
    """The emitted share graph is runnable as-is: every register placed,
    every replica storing something, graph connected."""
    result = geant_result
    graph = result.share_graph
    assert graph.is_connected()
    assert set(result.placement.registers) == set(result.spec.registers)
    for rid in graph.replica_ids:
        assert graph.registers_at(rid)
