"""Differential trace-equivalence: same seed, sim vs live, same answers.

The headline tests of the live runtime.  Each test replays one seeded
single-writer workload through the discrete-event simulator and through a
real multi-process TCP cluster on localhost, then asserts (via
:func:`tests.differential.harness.assert_equivalent`):

* identical consistency verdicts (and violation counts);
* identical final register state at every storing replica;
* identical first-receipt update-id streams on every directed channel.

Three topology families cover the interesting share-graph shapes: the
pairwise clique (dense, every pair a channel), the tree (sparse,
hierarchical) and the ring (the cycle topology the paper's loop machinery
exists for).
"""

from __future__ import annotations

import pytest

from repro.sim.topologies import (
    clique_placement,
    pairwise_clique_placement,
    ring_placement,
    tree_placement,
)

from .harness import run_differential

TOPOLOGIES = {
    "clique": lambda: pairwise_clique_placement(4),
    "tree": lambda: tree_placement(7),
    "ring": lambda: ring_placement(6),
    # One register shared by all four replicas: every write multicasts to
    # three destinations (replication factor 4), pinning the per-channel
    # streams of a single update across many channels at once.
    "shared-register": lambda: clique_placement(4),
}


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_same_seed_sim_and_live_agree(topology, tmp_path):
    placement = TOPOLOGIES[topology]()
    sim, live = run_differential(
        placement, seed=11, rate=4.0, duration=40.0,
        durable_dir=str(tmp_path),
    )
    # The workload actually exercised the wire: updates crossed channels.
    assert sim.streams, "workload produced no cross-replica traffic"
    assert any(uids for _, uids in sim.streams)


@pytest.mark.parametrize("topology", ["clique", "ring"])
def test_multi_tenant_live_agrees_with_sim(topology, tmp_path):
    """The multiplexed transport is bit-exact too: co-hosting the replicas
    on 2 multi-tenant nodes (intra-node short-circuit + host-pair streams
    + WAL durability) must reproduce the simulator's verdict, final state
    and per-channel first-receipt streams — only the wire *books* shrink,
    because intra-node channels ship no bytes."""
    placement = TOPOLOGIES[topology]()
    sim, live = run_differential(
        placement, seed=17, rate=4.0, duration=40.0,
        durable_dir=str(tmp_path), nodes=2,
    )
    assert sim.streams, "workload produced no cross-replica traffic"


def test_different_seeds_differ_but_both_hold():
    """Sanity: the harness is not vacuous — seeds change the streams."""
    placement = pairwise_clique_placement(4)
    from .harness import differential_workload, run_sim

    first = run_sim(placement, differential_workload(placement, seed=1), seed=1)
    second = run_sim(placement, differential_workload(placement, seed=2), seed=2)
    assert first.streams != second.streams
    assert first.consistent and second.consistent


def test_live_run_reports_metrics(tmp_path):
    """The live side fills RunMetrics: applies, latencies, wall duration."""
    from repro.core.share_graph import ShareGraph
    from repro.net import LiveCluster

    from .harness import differential_workload

    placement = pairwise_clique_placement(4)
    graph = ShareGraph.from_placement(placement)
    workload = differential_workload(placement, seed=3, rate=4.0, duration=30.0)
    with LiveCluster(graph, durable_dir=str(tmp_path)) as cluster:
        result = cluster.run_open_loop(workload, time_scale=0.0005)
    assert result.metrics.writes == workload.write_count
    assert result.metrics.reads == workload.read_count
    assert result.metrics.applies > 0
    assert result.wall_duration > 0
    assert result.delivered_ops_per_sec > 0
    assert result.metrics.operation_latencies
    # Remote-apply latencies were joined across processes and are sane
    # wall-clock durations (non-negative, under the drain timeout).
    assert result.metrics.apply_latencies
    assert all(0 <= sample < 60 for sample in result.metrics.apply_latencies)
