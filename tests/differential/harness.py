"""The sim-vs-live differential harness.

One seeded workload, two executions:

* the **simulator** (:class:`~repro.sim.cluster.Cluster` over the event
  kernel, per-channel batching on so channels are FIFO streams — the same
  contract TCP gives the live runtime);
* the **live runtime** (:class:`~repro.net.runtime.LiveCluster`: one OS
  process per replica, real TCP, wall-clock time).

Both executions are reduced to the same :class:`RunOutcome` and compared
field by field:

* the **consistency verdict** — the
  :class:`~repro.core.consistency.ConsistencyChecker` judges both traces
  against Definition 2, and must say the same thing about each;
* the **final register state** — on a
  :func:`~repro.sim.workloads.single_writer_workload` the final value of
  every register at every storing replica is a function of the schedule
  alone (all writes to a register are ``↪``-ordered by its single
  writer), so simulated and wall-clock timing must converge to the
  identical state;
* the **per-channel delivery streams** — the first-receipt update-id
  sequence on every directed share-graph channel.  Per-sender issue order
  is fixed by the schedule and both transports are per-channel FIFO, so
  the streams must match update for update, in order.

Anything the live runtime gets wrong — a dropped message, a reordered
stream, a broken delta chain, a resync bug — surfaces as a diff against
the simulator, which two PRs' worth of tests already pin to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.protocol import UpdateId, UpdateMessage
from repro.core.registers import Register, RegisterPlacement, ReplicaId
from repro.core.share_graph import ShareGraph
from repro.net.runtime import LiveCluster
from repro.sim.cluster import Cluster
from repro.sim.engine import BatchingConfig
from repro.sim.workloads import (
    OpenLoopWorkload,
    run_open_loop,
    single_writer_workload,
)

Channel = Tuple[ReplicaId, ReplicaId]


@dataclass(frozen=True)
class RunOutcome:
    """The comparable essence of one execution (simulated or live)."""

    consistent: bool
    safety_violations: int
    liveness_violations: int
    #: register -> replica -> final value, over every storing replica.
    final_state: Tuple[Tuple[Register, Tuple[Tuple[ReplicaId, Any], ...]], ...]
    #: channel -> first-receipt uid stream.
    streams: Tuple[Tuple[Channel, Tuple[UpdateId, ...]], ...]
    #: channel -> (messages, timestamp bytes, payload bytes): the
    #: batch-boundary-independent slice of the per-channel wire books.
    #: Header bytes are deliberately excluded — they scale with the batch
    #: count, which wall-clock flush timing legitimately changes.  Message
    #: counts and payload bytes are schedule-determined (exact parity);
    #: timestamp bytes carry *causal state*, which depends on delivery
    #: timing, so they are only band-comparable (see
    #: :func:`assert_equivalent`).
    wire_books: Tuple[Tuple[Channel, Tuple[int, int, int]], ...] = ()
    #: ``True`` when no retransmission/resync/duplicate touched the run —
    #: the precondition for byte parity (the sim re-sends lost copies as
    #: full-frame singles, the live runtime re-batches them with deltas,
    #: so only clean runs are byte-comparable).
    clean: bool = True


def _freeze_state(state: Dict[Register, Dict[ReplicaId, Any]]) -> Tuple:
    return tuple(
        (register, tuple(sorted(state[register].items())))
        for register in sorted(state)
    )


def _freeze_streams(streams: Dict[Channel, Tuple[UpdateId, ...]]) -> Tuple:
    return tuple(sorted((c, tuple(u)) for c, u in streams.items() if u))


def _freeze_wire_books(per_channel: Dict[Channel, Any]) -> Tuple:
    """The byte-parity slice of per-channel wire books (either runtime's)."""
    return tuple(sorted(
        (channel, (book.messages, book.timestamp_bytes, book.payload_bytes))
        for channel, book in per_channel.items()
        if book.messages
    ))


class RecordingCluster(Cluster):
    """A simulated cluster that records per-channel delivery streams.

    Mirrors what a live node records at its sockets: the first receipt of
    every update, per directed channel, in delivery order.  Pure test
    instrumentation — the production simulator is untouched.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.streams: Dict[Channel, list] = {}
        self._seen: set = set()

    def _note_receipt(self, channel: Channel, uid: UpdateId) -> None:
        # Dedup per *destination*, matching the live node's seen_uids: a
        # multicast update (replication factor ≥ 3) is a first receipt at
        # every destination, but a retransmitted copy at one destination
        # is not.
        key = (channel[1], uid)
        if key not in self._seen:
            self._seen.add(key)
            self.streams.setdefault(channel, []).append(uid)

    def _deliver(self, message: UpdateMessage) -> None:
        self._note_receipt(
            (message.sender, message.destination), message.update.uid
        )
        super()._deliver(message)

    def _deliver_batch(self, batch: Any) -> None:
        for message in batch.messages:
            self._note_receipt(batch.channel, message.update.uid)
        super()._deliver_batch(batch)


def differential_workload(
    placement: RegisterPlacement,
    rate: float = 4.0,
    duration: float = 40.0,
    write_fraction: float = 0.6,
    seed: int = 0,
) -> OpenLoopWorkload:
    """The seeded single-writer workload both executions replay."""
    graph = ShareGraph.from_placement(placement)
    return single_writer_workload(
        graph, rate=rate, duration=duration,
        write_fraction=write_fraction, seed=seed,
    )


def run_sim(
    placement: RegisterPlacement,
    workload: OpenLoopWorkload,
    seed: int = 0,
) -> RunOutcome:
    """Replay the workload through the simulator (the oracle side)."""
    graph = ShareGraph.from_placement(placement)
    cluster = RecordingCluster(
        graph, seed=seed,
        # Batching makes simulated channels FIFO byte streams — the
        # delivery contract the live runtime's TCP connections provide.
        batching=BatchingConfig(max_messages=16, max_delay=2.0),
    )
    result = run_open_loop(cluster, workload)
    stats = cluster.network.stats
    return RunOutcome(
        consistent=result.consistent,
        safety_violations=result.safety_violations,
        liveness_violations=result.liveness_violations,
        final_state=_freeze_state(
            {r: cluster.values(r) for r in placement.registers}
        ),
        streams=_freeze_streams(
            {c: tuple(u) for c, u in cluster.streams.items()}
        ),
        wire_books=_freeze_wire_books(stats.per_channel),
        clean=(stats.retransmissions == 0 and stats.messages_dropped == 0
               and stats.messages_duplicated == 0),
    )


def run_live(
    placement: RegisterPlacement,
    workload: OpenLoopWorkload,
    durable_dir: Optional[str] = None,
    time_scale: float = 0.0005,
    nodes: Optional[int] = None,
    node_placement: Optional[Dict[str, Tuple[ReplicaId, ...]]] = None,
) -> RunOutcome:
    """Replay the workload through the live runtime (the system under test).

    ``nodes`` co-hosts the replicas on that many multi-tenant processes
    (the host-pair-multiplexed transport); the default keeps one process
    per replica.  ``node_placement`` instead pins replicas to named nodes
    through the runtime's explicit ``placement=`` hook — the shape a
    topology-driven :meth:`~repro.placement.base.PlacementResult.live_placement`
    emits, where each topology site becomes one OS process.
    """
    graph = ShareGraph.from_placement(placement)
    with LiveCluster(
        graph, durable_dir=durable_dir, nodes=nodes, placement=node_placement
    ) as cluster:
        result = cluster.run_open_loop(workload, time_scale=time_scale)
    report = result.check_consistency()
    counters = [r.get("counters", {}) for r in result.reports.values()]
    return RunOutcome(
        consistent=report.is_causally_consistent,
        safety_violations=len(report.safety_violations),
        liveness_violations=len(report.liveness_violations),
        final_state=_freeze_state(result.final_state()),
        streams=_freeze_streams(result.channel_streams()),
        wire_books=_freeze_wire_books(result.channel_wire_stats()),
        clean=all(
            c.get("retransmissions", 0) == 0 and c.get("resyncs", 0) == 0
            and c.get("duplicates", 0) == 0
            for c in counters
        ),
    )


def assert_equivalent(sim: RunOutcome, live: RunOutcome,
                      live_wire_subset: bool = False) -> None:
    """The differential assertion, field by field for readable failures.

    ``live_wire_subset`` relaxes only the wire-book channel-set check: in a
    multi-tenant live run, channels between co-hosted replicas
    short-circuit in process and ship no bytes, so the live books cover a
    subset of the sim's channels.  Delivery streams and final state are
    still compared exactly — the short-circuit must deliver the identical
    update sequence, it just doesn't pay for a socket.
    """
    assert sim.consistent and live.consistent, (
        f"verdicts: sim consistent={sim.consistent} "
        f"({sim.safety_violations} safety / {sim.liveness_violations} "
        f"liveness), live consistent={live.consistent} "
        f"({live.safety_violations} safety / {live.liveness_violations} "
        "liveness)"
    )
    assert (sim.safety_violations, sim.liveness_violations) == (
        live.safety_violations, live.liveness_violations
    )
    assert sim.final_state == live.final_state, (
        "final register states diverged between sim and live"
    )
    sim_streams = dict(sim.streams)
    live_streams = dict(live.streams)
    assert set(sim_streams) == set(live_streams), (
        f"channel sets diverged: sim-only {set(sim_streams) - set(live_streams)}, "
        f"live-only {set(live_streams) - set(sim_streams)}"
    )
    for channel in sim_streams:
        assert sim_streams[channel] == live_streams[channel], (
            f"delivery stream diverged on channel {channel}: "
            f"sim {sim_streams[channel][:5]}… vs live {live_streams[channel][:5]}…"
        )
    # Byte parity.  On a clean run (no retransmission/resync/duplicate on
    # either side — those re-send through different paths: the sim ships
    # full-frame singles, the live node re-batches with deltas) the
    # per-channel books are comparable at two strengths:
    #
    # * **exact** — message counts and payload bytes.  Both are functions
    #   of the schedule alone: the same update stream crosses each
    #   channel, and a value's payload encoding does not depend on when
    #   its message was delivered.
    # * **banded** — timestamp bytes.  A timestamp is *causal state*: its
    #   counters record what the issuer had applied at issue time, which
    #   real delivery timing legitimately perturbs, so the varint/delta
    #   widths differ between simulated and wall-clock executions.  The
    #   counter *structure* per message is identical (fixed by the share
    #   graph), so the totals must still land within 2x of each other —
    #   wide enough for timing noise, tight enough to catch a broken
    #   delta chain (which regresses to full frames, a >2x blowup on any
    #   channel long enough to matter).
    if sim.clean and live.clean and sim.wire_books and live.wire_books:
        sim_books = dict(sim.wire_books)
        live_books = dict(live.wire_books)
        if live_wire_subset:
            assert set(live_books) <= set(sim_books), (
                f"live booked bytes on channels the sim never used: "
                f"{set(live_books) - set(sim_books)}"
            )
        else:
            assert set(sim_books) == set(live_books), (
                f"wire-book channel sets diverged: "
                f"sim-only {set(sim_books) - set(live_books)}, "
                f"live-only {set(live_books) - set(sim_books)}"
            )
        for channel in live_books:
            sim_messages, sim_ts, sim_payload = sim_books[channel]
            live_messages, live_ts, live_payload = live_books[channel]
            assert (sim_messages, sim_payload) == (live_messages, live_payload), (
                f"wire books diverged on channel {channel}: sim "
                f"(messages, payload bytes) = {(sim_messages, sim_payload)} "
                f"vs live {(live_messages, live_payload)}"
            )
            assert sim_ts > 0 and live_ts > 0, (
                f"channel {channel} carried messages but booked no "
                f"timestamp bytes (sim {sim_ts}, live {live_ts})"
            )
            ratio = live_ts / sim_ts
            assert 0.5 <= ratio <= 2.0, (
                f"timestamp bytes diverged beyond timing noise on channel "
                f"{channel}: sim {sim_ts} vs live {live_ts} "
                f"(ratio {ratio:.2f}; a broken delta chain regresses to "
                "full frames and trips this)"
            )


def run_differential(
    placement: RegisterPlacement,
    seed: int = 0,
    rate: float = 4.0,
    duration: float = 40.0,
    durable_dir: Optional[str] = None,
    nodes: Optional[int] = None,
    node_placement: Optional[Dict[str, Tuple[ReplicaId, ...]]] = None,
) -> Tuple[RunOutcome, RunOutcome]:
    """Run both sides on the same seeded workload and assert equivalence."""
    workload = differential_workload(placement, rate=rate, duration=duration,
                                     seed=seed)
    sim = run_sim(placement, workload, seed=seed)
    live = run_live(placement, workload, durable_dir=durable_dir, nodes=nodes,
                    node_placement=node_placement)
    # Multi-tenant runs (either the contiguous `nodes` split or an explicit
    # node placement) short-circuit co-hosted channels, so the live wire
    # books cover a subset of the sim's channels.
    assert_equivalent(
        sim, live,
        live_wire_subset=nodes is not None or node_placement is not None,
    )
    return sim, live
