"""Sim-vs-live differential tests: the simulator as executable spec."""
