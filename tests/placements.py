"""Shared placement suites for parametrized integration tests.

Importable by name (``from placements import all_small_placements``) so test
modules do not depend on conftest import-order resolution — ``conftest`` is
ambiguous when both ``tests/`` and ``benchmarks/`` are on ``sys.path``.
"""

from __future__ import annotations

from repro.core.registers import RegisterPlacement
from repro.sim.topologies import (
    clique_placement,
    figure3_placement,
    figure5_placement,
    grid_placement,
    pairwise_clique_placement,
    path_placement,
    random_partial_placement,
    ring_placement,
    star_placement,
    tree_placement,
    triangle_placement,
)


def all_small_placements() -> dict:
    """A suite of small placements used by parametrized integration tests."""
    return {
        "figure3": figure3_placement(),
        "figure5": figure5_placement(),
        "triangle": triangle_placement(),
        "ring5": ring_placement(5),
        "tree7": tree_placement(7),
        "star4": star_placement(4),
        "path4": path_placement(4),
        "clique4": clique_placement(4),
        "pairwise4": pairwise_clique_placement(4),
        "grid2x3": grid_placement(2, 3),
        "random7": random_partial_placement(7, 10, replication_factor=3, seed=3),
    }
