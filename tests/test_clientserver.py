"""Unit and integration tests for the client–server architecture (Appendix E)."""

from __future__ import annotations

import pytest

from repro.clientserver import (
    AugmentedShareGraph,
    ClientAgent,
    ClientAssignment,
    ClientServerCluster,
    ClientServerReplica,
    augmented_timestamp_edges,
    build_all_augmented_timestamp_edges,
    client_index_edges,
    has_augmented_loop,
)
from repro.clientserver.server import ClientRequest
from repro.core.errors import ConfigurationError, UnknownReplicaError
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import timestamp_edges
from repro.core.timestamps import EdgeTimestamp
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.topologies import figure3_placement, path_placement, triangle_placement


@pytest.fixture
def fig3_graph():
    return ShareGraph.from_placement(figure3_placement())


@pytest.fixture
def spanning_client(fig3_graph):
    """A client accessing the two end replicas of the Figure 3 path."""
    return ClientAssignment.from_dict({"c1": {1, 4}})


class TestClientAssignment:
    def test_from_dict_and_queries(self):
        clients = ClientAssignment.from_dict({"c1": [1, 2], "c2": [2, 3]})
        assert clients.client_ids == ("c1", "c2")
        assert clients.replicas_of("c1") == frozenset({1, 2})
        assert clients.linked(1, 2)
        assert not clients.linked(1, 3)

    def test_client_edges_are_pairs(self):
        clients = ClientAssignment.from_dict({"c": [1, 3]})
        assert clients.client_edges() == frozenset({(1, 3), (3, 1)})

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientAssignment.from_dict({"c": []})

    def test_unknown_client_rejected(self):
        clients = ClientAssignment.from_dict({"c": [1]})
        with pytest.raises(ConfigurationError):
            clients.replicas_of("nope")


class TestAugmentedGraph:
    def test_augmented_edges_superset_of_share_edges(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        assert fig3_graph.edges <= augmented.edges
        assert (1, 4) in augmented.edges and (4, 1) in augmented.edges

    def test_unknown_replica_in_assignment_rejected(self, fig3_graph):
        with pytest.raises(UnknownReplicaError):
            AugmentedShareGraph(fig3_graph, ClientAssignment.from_dict({"c": [99]}))

    def test_neighbors_include_client_links(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        assert 4 in augmented.neighbors(1)

    def test_cycles_appear_only_with_client_link(self, fig3_graph, spanning_client):
        # The Figure 3 share graph is a path (no cycles); the client link
        # closes it into a cycle.
        assert list(fig3_graph.simple_cycles_through(1)) == []
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        assert list(augmented.simple_cycles_through(1))

    def test_augmented_loops_exist_for_remote_edges(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        # Replica 1 now needs to track e_32 (an edge between two other
        # replicas) because the client link closes a loop through it.
        assert has_augmented_loop(augmented, 1, (3, 2))

    def test_augmented_timestamp_edges_exclude_client_edges(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        for rid in fig3_graph.replica_ids:
            edges = augmented_timestamp_edges(augmented, rid)
            assert edges <= fig3_graph.edges  # the (1,4) client link never indexed
            # and they always contain the peer-to-peer requirement
            assert timestamp_edges(fig3_graph, rid) <= edges

    def test_no_clients_reduces_to_peer_to_peer(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c": [2]})
        augmented = AugmentedShareGraph(fig3_graph, clients)
        for rid in fig3_graph.replica_ids:
            assert augmented_timestamp_edges(augmented, rid) == timestamp_edges(
                fig3_graph, rid
            )

    def test_client_index_edges_union(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        per_replica = build_all_augmented_timestamp_edges(augmented)
        union = client_index_edges(augmented, "c1", per_replica)
        assert union == per_replica[1] | per_replica[4]


class TestClientAgent:
    def test_choose_replica_prefers_request(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c": [2, 3]})
        augmented = AugmentedShareGraph(fig3_graph, clients)
        agent = ClientAgent(augmented, "c")
        # y is stored at 2 and 3: default is the lowest id, preference wins.
        assert agent.choose_replica("y") == 2
        assert agent.choose_replica("y", preferred=3) == 3

    def test_choose_replica_requires_accessible_owner(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c": [1]})
        augmented = AugmentedShareGraph(fig3_graph, clients)
        agent = ClientAgent(augmented, "c")
        with pytest.raises(ValueError):
            agent.choose_replica("z")

    def test_accessible_registers(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c": [1, 4]})
        augmented = AugmentedShareGraph(fig3_graph, clients)
        agent = ClientAgent(augmented, "c")
        assert agent.accessible_registers() == frozenset({"x", "z"})

    def test_absorb_response_merges(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        agent = ClientAgent(augmented, "c1")
        some_edge = sorted(agent.index_edges)[0]
        agent.absorb_response(EdgeTimestamp({some_edge: 3}))
        assert agent.timestamp[some_edge] == 3
        assert agent.metadata_size() == len(agent.index_edges)


class TestServerReplica:
    def test_request_buffered_until_caught_up(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        server = ClientServerReplica(augmented, 2)
        stale_edge = (1, 2)
        demanding = EdgeTimestamp({stale_edge: 1})
        request = ClientRequest("read", "c1", "x", None, demanding)
        assert server.submit(request) is None
        assert server.waiting_requests
        # Once the server catches up (applies the 1 -> 2 update) it serves.
        server.timestamp = server.timestamp.merged_with(
            EdgeTimestamp({stale_edge: 1}), shared_edges=[stale_edge]
        )
        served = server.serve_waiting()
        assert len(served) == 1
        # The response is also queued for pickup exactly once.
        assert server.take_response("c1", "read", "x") is served[0]
        assert server.take_response("c1", "read", "x") is None

    def test_write_for_client_absorbs_client_knowledge(self, fig3_graph, spanning_client):
        augmented = AugmentedShareGraph(fig3_graph, spanning_client)
        server = ClientServerReplica(augmented, 2)
        client_mu = EdgeTimestamp({(3, 2): 1})
        # The predicate would normally buffer this, but calling the advance
        # directly shows the merge-then-increment behaviour.
        messages = server.write_for_client("y", "v", client_mu)
        assert server.timestamp[(3, 2)] == 1
        assert server.timestamp[(2, 3)] == 1
        assert [m.destination for m in messages] == [3]


class TestClientServerCluster:
    def test_session_read_your_writes_across_replicas(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c1": {2, 3}})
        cluster = ClientServerCluster(fig3_graph, clients, delay_model=FixedDelay(1.0), seed=0)
        cluster.client_write("c1", "y", "from-2", replica_id=2)
        # Reading y at replica 3 must block until the update has propagated,
        # then return the written value.
        assert cluster.client_read("c1", "y", replica_id=3) == "from-2"

    def test_dependency_propagation_through_client(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c1": {1, 4}, "helper": {2, 3}})
        cluster = ClientServerCluster(fig3_graph, clients, delay_model=FixedDelay(1.0), seed=1)
        cluster.client_write("c1", "x", "x1", replica_id=1)
        cluster.client_write("c1", "z", "z1", replica_id=4)
        cluster.client_write("helper", "y", "y1", replica_id=2)
        cluster.run_until_quiescent()
        report = cluster.check_consistency()
        assert report.is_causally_consistent

    def test_mixed_workload_consistent(self, fig3_graph):
        clients = ClientAssignment.from_dict(
            {"c1": {1, 4}, "c2": {2, 3}, "c3": {1, 2}}
        )
        cluster = ClientServerCluster(
            fig3_graph, clients, delay_model=UniformDelay(1, 5), seed=3
        )
        for i in range(5):
            cluster.client_write("c1", "x", f"x{i}", replica_id=1)
            cluster.client_write("c2", "y", f"y{i}", replica_id=2)
            cluster.client_write("c1", "z", f"z{i}", replica_id=4)
            cluster.client_read("c2", "z", replica_id=3)
            cluster.client_write("c3", "x", f"x'{i}", replica_id=2)
            cluster.client_read("c3", "x", replica_id=1)
        cluster.run_until_quiescent()
        assert cluster.check_consistency().is_causally_consistent

    def test_metadata_sizes_reported(self, fig3_graph):
        clients = ClientAssignment.from_dict({"c1": {1, 4}})
        cluster = ClientServerCluster(fig3_graph, clients, seed=0)
        servers = cluster.server_metadata_sizes()
        assert set(servers) == {1, 2, 3, 4}
        assert cluster.client_metadata_sizes()["c1"] >= max(servers[1], servers[4])

    def test_triangle_client_server_consistent(self):
        graph = ShareGraph.from_placement(triangle_placement())
        clients = ClientAssignment.from_dict({"a": {1, 2}, "b": {2, 3}})
        cluster = ClientServerCluster(graph, clients, delay_model=UniformDelay(1, 4), seed=5)
        for i in range(6):
            cluster.client_write("a", "x", f"x{i}", replica_id=1)
            cluster.client_write("b", "y", f"y{i}", replica_id=2)
            cluster.client_read("a", "x", replica_id=2)
            cluster.client_read("b", "y", replica_id=3)
        cluster.run_until_quiescent()
        assert cluster.check_consistency().is_causally_consistent
