"""Property-based tests (hypothesis) for the wire codecs.

Random share graphs drive random write/apply sequences through all four
replica families, and every timestamp the protocols actually produce must:

* round-trip exactly through its family codec (``decode ∘ encode = id``),
  in full mode and through a per-channel delta stream;
* have an encoded size that is monotone against the paper's counter
  measure: at least one byte per counter, non-decreasing under pointwise
  counter growth, and strictly increasing when the index set grows.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.full_track import FullTrackReplica
from repro.baselines.hoop_tracking import HoopTrackingReplica
from repro.baselines.vector_clock_full import FullReplicationReplica
from repro.core.registers import RegisterPlacement
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.core.timestamps import EdgeTimestamp, VectorTimestamp
from repro.wire import (
    ChannelDeltaDecoder,
    ChannelDeltaEncoder,
    decode_timestamp_frame,
    encode_timestamp_frame,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

edges_strategy = st.dictionaries(
    keys=st.tuples(st.integers(1, 6), st.integers(1, 6)).filter(lambda e: e[0] != e[1]),
    values=st.integers(0, 2**40),
    min_size=1,
    max_size=16,
)

vector_strategy = st.dictionaries(
    keys=st.integers(1, 12), values=st.integers(0, 2**40), min_size=1, max_size=12
)


@st.composite
def placements(draw, max_replicas: int = 5, max_registers: int = 6):
    """Random register placements in which every register has ≥ 1 owner."""
    num_replicas = draw(st.integers(2, max_replicas))
    num_registers = draw(st.integers(1, max_registers))
    stores = {rid: set() for rid in range(1, num_replicas + 1)}
    for reg_index in range(num_registers):
        owners = draw(
            st.sets(st.integers(1, num_replicas), min_size=1, max_size=num_replicas)
        )
        for owner in owners:
            stores[owner].add(f"r{reg_index}")
    for rid in stores:
        stores[rid].add(f"local_{rid}")
    return RegisterPlacement.from_dict(stores)


FAMILIES = {
    "edge": EdgeIndexedReplica,
    "matrix": FullTrackReplica,
    "vector": FullReplicationReplica,
    "hoop": HoopTrackingReplica,
}


def _replica_timestamp_sequence(graph, factory, seed, length=12):
    """Drive one replica with random local writes and cross-replica applies,
    yielding the (message, codec) pairs its protocol actually emits."""
    rng = random.Random(seed)
    replicas = {rid: factory(graph, rid) for rid in graph.replica_ids}
    produced = []
    for _ in range(length):
        rid = rng.choice(list(graph.replica_ids))
        replica = replicas[rid]
        registers = sorted(replica.registers & set(graph.registers_at(rid)))
        if not registers:
            registers = sorted(replica.registers)
        register = rng.choice(registers)
        messages = replica.write(register, rng.random())
        for message in messages:
            produced.append((message, replica.wire_codec()))
        # Deliver a random prefix so merges advance other replicas' clocks.
        for message in messages:
            if rng.random() < 0.7:
                replicas[message.destination].receive(message)
                replicas[message.destination].apply_ready()
    return produced


# ----------------------------------------------------------------------
# Round-trip identity for protocol-produced timestamps, all four families
# ----------------------------------------------------------------------

class TestProtocolRoundTrips:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(placements(), st.integers(0, 10_000))
    def test_all_families_round_trip_real_timestamp_sequences(self, placement, seed):
        graph = ShareGraph.from_placement(placement)
        for family, cls in FAMILIES.items():
            factory = lambda g, rid: cls(g, rid)  # noqa: E731
            for message, codec in _replica_timestamp_sequence(graph, factory, seed):
                frame = encode_timestamp_frame(message.metadata, codec=codec)
                decoded, offset = decode_timestamp_frame(frame.data)
                assert decoded == message.metadata, family
                assert offset == len(frame.data)
                # The byte measure lower-bounds to the counter measure.
                assert len(frame.data) >= message.metadata.size_counters()

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(placements(), st.integers(0, 10_000))
    def test_channel_delta_streams_round_trip(self, placement, seed):
        graph = ShareGraph.from_placement(placement)
        for family, cls in FAMILIES.items():
            factory = lambda g, rid: cls(g, rid)  # noqa: E731
            encoder, decoder = ChannelDeltaEncoder(), ChannelDeltaDecoder()
            for message, codec in _replica_timestamp_sequence(graph, factory, seed):
                data, sizes = encoder.encode_message(message, codec=codec)
                decoded, offset = decoder.decode_message(
                    data, 0, message.sender, message.destination
                )
                assert decoded == message, family
                assert offset == len(data)
                # A delta frame never exceeds its full counterfactual.
                assert sizes.timestamp_bytes <= sizes.timestamp_bytes_full


# ----------------------------------------------------------------------
# Monotonicity of encoded size vs. the counter measure
# ----------------------------------------------------------------------

class TestSizeMonotonicity:
    @settings(max_examples=100, deadline=None)
    @given(edges_strategy)
    def test_edge_bytes_lower_bounded_by_counters(self, counters):
        ts = EdgeTimestamp(counters)
        frame = encode_timestamp_frame(ts)
        assert len(frame.data) >= ts.size_counters()

    @settings(max_examples=100, deadline=None)
    @given(edges_strategy, st.integers(0, 2**20))
    def test_edge_pointwise_growth_never_shrinks_encoding(self, counters, bump):
        ts = EdgeTimestamp(counters)
        grown = EdgeTimestamp({e: v + bump for e, v in counters.items()})
        assert len(encode_timestamp_frame(grown).data) >= len(
            encode_timestamp_frame(ts).data
        )

    @settings(max_examples=100, deadline=None)
    @given(edges_strategy)
    def test_edge_index_growth_strictly_grows_encoding(self, counters):
        ts = EdgeTimestamp(counters)
        extra_edge = (99, 100)
        assert extra_edge not in counters
        grown = EdgeTimestamp({**counters, extra_edge: 0})
        assert len(encode_timestamp_frame(grown).data) > len(
            encode_timestamp_frame(ts).data
        )

    @settings(max_examples=100, deadline=None)
    @given(vector_strategy, st.integers(0, 2**20))
    def test_vector_pointwise_growth_never_shrinks_encoding(self, counters, bump):
        ts = VectorTimestamp(counters)
        grown = VectorTimestamp({r: v + bump for r, v in counters.items()})
        assert len(encode_timestamp_frame(grown).data) >= len(
            encode_timestamp_frame(ts).data
        )
        assert len(encode_timestamp_frame(ts).data) >= ts.size_counters()

    @settings(max_examples=100, deadline=None)
    @given(edges_strategy)
    def test_full_round_trip_arbitrary_edge_timestamps(self, counters):
        ts = EdgeTimestamp(counters)
        frame = encode_timestamp_frame(ts)
        assert decode_timestamp_frame(frame.data)[0] == ts

    @settings(max_examples=100, deadline=None)
    @given(vector_strategy)
    def test_full_round_trip_arbitrary_vector_timestamps(self, counters):
        ts = VectorTimestamp(counters)
        frame = encode_timestamp_frame(ts)
        assert decode_timestamp_frame(frame.data)[0] == ts

    @settings(max_examples=60, deadline=None)
    @given(edges_strategy, edges_strategy)
    def test_delta_round_trip_monotone_pairs(self, base, growth):
        """For any prev ≤ ts on the same index, the delta frame reproduces ts."""
        prev = EdgeTimestamp(base)
        ts = EdgeTimestamp(
            {e: v + growth.get(e, 0) for e, v in base.items()}
        )
        frame = encode_timestamp_frame(ts, prev=prev)
        assert len(frame.data) <= frame.full_size
        decoded, _ = decode_timestamp_frame(frame.data, prev=prev)
        assert decoded == ts
