"""Unit tests for repro.core.timestamps — edge timestamps, advance/merge/J, vector clocks."""

from __future__ import annotations

import pytest

from repro.core.errors import ProtocolError
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import TimestampGraph
from repro.core.timestamps import (
    EdgeTimestamp,
    VectorTimestamp,
    advance,
    delivery_predicate,
    merge,
)
from repro.sim.topologies import figure5_placement, triangle_placement


@pytest.fixture
def tri_graph():
    return ShareGraph.from_placement(triangle_placement())


class TestEdgeTimestamp:
    def test_zero_constructor(self):
        ts = EdgeTimestamp.zero([(1, 2), (2, 1)])
        assert ts[(1, 2)] == 0 and ts[(2, 1)] == 0
        assert len(ts) == 2

    def test_missing_edge_reads_as_zero(self):
        ts = EdgeTimestamp({(1, 2): 3})
        assert ts[(9, 9)] == 0
        assert ts.get((9, 9), default=7) == 7

    def test_negative_counter_rejected(self):
        with pytest.raises(ProtocolError):
            EdgeTimestamp({(1, 2): -1})

    def test_bad_index_rejected(self):
        with pytest.raises(ProtocolError):
            EdgeTimestamp({(1, 2, 3): 0})

    def test_incremented_only_touches_indexed_edges(self):
        ts = EdgeTimestamp.zero([(1, 2)])
        bumped = ts.incremented([(1, 2), (9, 9)])
        assert bumped[(1, 2)] == 1
        assert (9, 9) not in bumped
        # Original unchanged (immutability).
        assert ts[(1, 2)] == 0

    def test_merged_with_takes_elementwise_max(self):
        a = EdgeTimestamp({(1, 2): 3, (2, 1): 1})
        b = EdgeTimestamp({(1, 2): 2, (2, 1): 5, (3, 1): 9})
        merged = a.merged_with(b)
        assert merged[(1, 2)] == 3
        assert merged[(2, 1)] == 5
        assert (3, 1) not in merged  # only edges indexed by `a` are kept

    def test_merged_with_explicit_shared_edges(self):
        a = EdgeTimestamp({(1, 2): 0, (2, 1): 0})
        b = EdgeTimestamp({(1, 2): 4, (2, 1): 4})
        merged = a.merged_with(b, shared_edges=[(1, 2)])
        assert merged[(1, 2)] == 4 and merged[(2, 1)] == 0

    def test_dominates(self):
        small = EdgeTimestamp({(1, 2): 1, (2, 1): 1})
        big = EdgeTimestamp({(1, 2): 2, (2, 1): 1})
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_equality_and_hash(self):
        a = EdgeTimestamp({(1, 2): 1})
        b = EdgeTimestamp({(1, 2): 1})
        c = EdgeTimestamp({(1, 2): 2})
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a timestamp"

    def test_total_and_sizes(self):
        ts = EdgeTimestamp({(1, 2): 3, (2, 1): 4})
        assert ts.total() == 7
        assert ts.size_counters() == 2
        assert ts.size_bits(max_updates=15) == pytest.approx(2 * 4.0)

    def test_items_and_iter(self):
        ts = EdgeTimestamp({(1, 2): 3})
        assert dict(ts.items()) == {(1, 2): 3}
        assert list(iter(ts)) == [(1, 2)]


class TestProtocolOperations:
    def test_advance_increments_only_coowner_edges(self, tri_graph):
        tg1 = TimestampGraph.build(tri_graph, 1)
        tau = EdgeTimestamp.zero(tg1.edges)
        # Register "x" is shared by replicas 1 and 2 only.
        after = advance(tri_graph, tg1, tau, "x")
        assert after[(1, 2)] == 1
        assert after[(1, 3)] == 0
        assert after[(2, 3)] == 0

    def test_advance_on_register_shared_with_multiple(self):
        graph = ShareGraph.from_placement(figure5_placement())
        tg4 = TimestampGraph.build(graph, 4)
        tau = EdgeTimestamp.zero(tg4.edges)
        # Register "y" is stored at replicas 1, 2 and 4.
        after = advance(graph, tg4, tau, "y")
        assert after[(4, 1)] == 1
        assert after[(4, 2)] == 1
        assert after[(4, 3)] == 0

    def test_merge_respects_index_intersection(self, tri_graph):
        tg1 = TimestampGraph.build(tri_graph, 1)
        tg2 = TimestampGraph.build(tri_graph, 2)
        tau1 = EdgeTimestamp.zero(tg1.edges)
        tau2 = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1), (2, 3)])
        merged = merge(tg1, tau1, tg2, tau2)
        assert merged[(2, 1)] == 1
        assert merged[(2, 3)] == 1  # the triangle's E_1 includes e_23

    def test_delivery_predicate_next_in_fifo_order(self, tri_graph):
        tg1 = TimestampGraph.build(tri_graph, 1)
        tg2 = TimestampGraph.build(tri_graph, 2)
        tau1 = EdgeTimestamp.zero(tg1.edges)
        # First update from replica 2 to 1: counter e_21 = 1.
        remote = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1)])
        assert delivery_predicate(tg1, tau1, 2, tg2, remote)
        # Second update (e_21 = 2) must wait for the first.
        remote2 = remote.incremented([(2, 1)])
        assert not delivery_predicate(tg1, tau1, 2, tg2, remote2)

    def test_delivery_predicate_waits_for_causal_dependency(self, tri_graph):
        tg1 = TimestampGraph.build(tri_graph, 1)
        tg2 = TimestampGraph.build(tri_graph, 2)
        tau1 = EdgeTimestamp.zero(tg1.edges)
        # Replica 2's update carries knowledge of an update from 3 to 1
        # (counter e_31 = 1) that replica 1 has not applied yet.
        remote = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1), (3, 1)])
        assert not delivery_predicate(tg1, tau1, 2, tg2, remote)
        # Once replica 1 catches up on e_31 the predicate passes.
        tau1_caught_up = tau1.incremented([(3, 1)])
        assert delivery_predicate(tg1, tau1_caught_up, 2, tg2, remote)

    def test_delivery_predicate_rejects_self(self, tri_graph):
        tg1 = TimestampGraph.build(tri_graph, 1)
        tau = EdgeTimestamp.zero(tg1.edges)
        with pytest.raises(ProtocolError):
            delivery_predicate(tg1, tau, 1, tg1, tau)


class TestVectorTimestamp:
    def test_zero_and_get(self):
        v = VectorTimestamp.zero([1, 2, 3])
        assert v[1] == 0 and v.get(9) == 0
        assert len(v) == 3

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            VectorTimestamp({1: -2})

    def test_incremented_and_merge(self):
        v = VectorTimestamp.zero([1, 2]).incremented(1)
        w = VectorTimestamp({1: 0, 2: 5})
        merged = v.merged_with(w)
        assert merged[1] == 1 and merged[2] == 5

    def test_dominates(self):
        a = VectorTimestamp({1: 2, 2: 2})
        b = VectorTimestamp({1: 1, 2: 2})
        assert a.dominates(b) and not b.dominates(a)

    def test_equality_and_hash(self):
        assert VectorTimestamp({1: 1}) == VectorTimestamp({1: 1})
        assert VectorTimestamp({1: 1}) != VectorTimestamp({1: 2})
        assert hash(VectorTimestamp({1: 1})) == hash(VectorTimestamp({1: 1}))
        assert VectorTimestamp({1: 1}) != object()

    def test_size_counters(self):
        assert VectorTimestamp.zero(range(5)).size_counters() == 5
