"""Property-based tests for the placement policies (hypothesis).

Every policy, on random connected topologies, must emit a placement that
is actually runnable: all registers covered at their replication factor,
every replica storing at least one register (the workload generators
address every replica), per-replica capacity respected, the share graph
connected, deterministic per ``(spec, seed)``, and
:class:`~repro.core.replica.EdgeIndexedReplica` constructible on the
emitted share graph without raising.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import PlacementError
from repro.core.replica import EdgeIndexedReplica
from repro.placement import (
    AvailabilityAwarePlacement,
    LatencyGreedyPlacement,
    PlacementSpec,
    RandomPlacement,
    placement_policies,
    score_placement,
)
from repro.topo import Topology, geant_like

POLICIES = sorted(placement_policies())


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def topologies(draw, max_nodes: int = 8):
    """Random connected topologies: a random tree plus extra edges."""
    num_nodes = draw(st.integers(3, max_nodes))
    num_regions = draw(st.integers(1, 3))
    names = [f"s{i}" for i in range(num_nodes)]
    lines = [
        f"node {name} reg{i % num_regions}" for i, name in enumerate(names)
    ]
    seen = set()
    for i in range(1, num_nodes):
        parent = draw(st.integers(0, i - 1))
        latency = draw(st.floats(0.5, 50.0, allow_nan=False))
        seen.add((parent, i))
        lines.append(f"{names[parent]} {names[i]} {latency:.3f}")
    extra = draw(st.integers(0, num_nodes))
    for _ in range(extra):
        u = draw(st.integers(0, num_nodes - 1))
        v = draw(st.integers(0, num_nodes - 1))
        if u == v or (min(u, v), max(u, v)) in seen:
            continue
        seen.add((min(u, v), max(u, v)))
        latency = draw(st.floats(0.5, 50.0, allow_nan=False))
        lines.append(f"{names[u]} {names[v]} {latency:.3f}")
    return Topology.parse("\n".join(lines), name=f"random-{num_nodes}")


@st.composite
def specs(draw):
    """Feasible placement specs over random topologies."""
    topology = draw(topologies())
    num_replicas = draw(st.integers(2, topology.num_nodes))
    num_registers = draw(st.integers(1, 8))
    replication_factor = draw(st.integers(1, min(3, num_replicas)))
    # Generous capacity: the minimum feasible budget plus headroom, or
    # unbounded — policies must respect whichever they are given.
    minimum = -(-(num_registers * replication_factor + num_replicas - 1)
                // num_replicas)
    capacity = draw(st.one_of(
        st.none(), st.integers(minimum + 1, minimum + 8)
    ))
    return PlacementSpec.make(
        topology,
        num_replicas=num_replicas,
        num_registers=num_registers,
        replication_factor=replication_factor,
        capacity=capacity,
    )


COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Invariants, per policy
# ----------------------------------------------------------------------

class TestPlacementInvariants:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @COMMON
    @given(spec=specs(), seed=st.integers(0, 2**16))
    def test_every_register_covered_at_replication_factor(
        self, policy_name, spec, seed
    ):
        result = placement_policies()[policy_name].place(spec, seed=seed)
        assert set(result.placement.registers) >= set(spec.registers)
        for register in spec.registers:
            owners = result.placement.replicas_storing(register)
            assert len(owners) >= spec.replication_factor

    @pytest.mark.parametrize("policy_name", POLICIES)
    @COMMON
    @given(spec=specs(), seed=st.integers(0, 2**16))
    def test_capacity_respected_and_every_replica_nonempty(
        self, policy_name, spec, seed
    ):
        result = placement_policies()[policy_name].place(spec, seed=seed)
        for rid in spec.replica_ids:
            stored = result.placement.registers_at(rid)
            assert stored, f"replica {rid} stores nothing"
            if spec.capacity is not None:
                assert len(stored) <= spec.capacity

    @pytest.mark.parametrize("policy_name", POLICIES)
    @COMMON
    @given(spec=specs(), seed=st.integers(0, 2**16))
    def test_deterministic_per_seed(self, policy_name, spec, seed):
        policy = placement_policies()[policy_name]
        first = policy.place(spec, seed=seed)
        second = policy.place(spec, seed=seed)
        assert first.assignment == second.assignment
        assert first.placement == second.placement

    @pytest.mark.parametrize("policy_name", POLICIES)
    @COMMON
    @given(spec=specs(), seed=st.integers(0, 2**16))
    def test_share_graph_connected_and_replicas_constructible(
        self, policy_name, spec, seed
    ):
        result = placement_policies()[policy_name].place(spec, seed=seed)
        graph = result.share_graph
        assert graph.is_connected()
        # The paper's replica construction must accept the emitted graph.
        for rid in graph.replica_ids:
            replica = EdgeIndexedReplica(graph, rid)
            assert replica.timestamp.edges is not None

    @pytest.mark.parametrize("policy_name", POLICIES)
    @COMMON
    @given(spec=specs(), seed=st.integers(0, 2**16))
    def test_delay_model_is_positive_on_every_channel(
        self, policy_name, spec, seed
    ):
        result = placement_policies()[policy_name].place(spec, seed=seed)
        model = result.delay_model(jitter=0.2)
        rng = random.Random(seed)
        for i in spec.replica_ids:
            for j in spec.replica_ids:
                if i == j:
                    continue
                assert model.channel_base((i, j)) > 0.0
                message = type("M", (), {"sender": i, "destination": j})()
                assert model.delay(message, rng) > 0.0


class TestPlacementScoring:
    @COMMON
    @given(spec=specs(), seed=st.integers(0, 2**16))
    def test_scores_are_finite_and_survival_in_range(self, spec, seed):
        for policy in placement_policies().values():
            score = score_placement(policy.place(spec, seed=seed))
            assert score.counters_mean > 0.0
            assert score.algorithm_bits_mean > 0.0
            assert 0.0 <= score.region_survival_min <= 1.0
            assert score.edge_latency_p99 >= score.edge_latency_mean >= 0.0

    def test_availability_aware_survives_region_kill_on_geant(self):
        spec = PlacementSpec.make(
            geant_like(), num_replicas=10, num_registers=16,
            replication_factor=2, capacity=6,
        )
        result = AvailabilityAwarePlacement().place(spec, seed=3)
        score = score_placement(result)
        assert score.region_survival_min == 1.0
        for register in spec.registers:
            assert len(result.regions_of_register(register)) >= 2


class TestSpecValidation:
    def test_more_replicas_than_nodes_raises(self):
        with pytest.raises(PlacementError, match="do not fit"):
            PlacementSpec.make(geant_like(), num_replicas=23, num_registers=4)

    def test_insufficient_capacity_raises(self):
        with pytest.raises(PlacementError, match="capacity"):
            PlacementSpec.make(
                geant_like(), num_replicas=4, num_registers=10,
                replication_factor=2, capacity=2,
            )

    def test_replication_factor_bounds(self):
        with pytest.raises(PlacementError, match="replication factor"):
            PlacementSpec.make(
                geant_like(), num_replicas=3, num_registers=4,
                replication_factor=4,
            )

    def test_policies_have_distinct_names(self):
        registry = placement_policies()
        assert set(registry) == {
            "random", "latency-greedy", "availability-aware",
        }
        assert isinstance(registry["random"], RandomPlacement)
        assert isinstance(registry["latency-greedy"], LatencyGreedyPlacement)
        assert isinstance(
            registry["availability-aware"], AvailabilityAwarePlacement
        )
