"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registers import RegisterPlacement
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import timestamp_edges
from repro.core.timestamps import EdgeTimestamp, VectorTimestamp
from repro.optimizations.compression import compression_report
from repro.sim.cluster import Cluster
from repro.sim.delays import UniformDelay
from repro.sim.workloads import run_workload, uniform_workload


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

edges_strategy = st.dictionaries(
    keys=st.tuples(st.integers(1, 5), st.integers(1, 5)).filter(lambda e: e[0] != e[1]),
    values=st.integers(0, 50),
    min_size=1,
    max_size=12,
)


@st.composite
def placements(draw, max_replicas: int = 6, max_registers: int = 8):
    """Random register placements in which every register has >= 1 owner."""
    num_replicas = draw(st.integers(2, max_replicas))
    num_registers = draw(st.integers(1, max_registers))
    stores = {rid: set() for rid in range(1, num_replicas + 1)}
    for reg_index in range(num_registers):
        owners = draw(
            st.sets(st.integers(1, num_replicas), min_size=1, max_size=num_replicas)
        )
        for owner in owners:
            stores[owner].add(f"r{reg_index}")
    # Guarantee every replica stores something (empty replicas are legal but
    # uninteresting and slow the share-graph strategies down).
    for rid in stores:
        stores[rid].add(f"local_{rid}")
    return RegisterPlacement.from_dict(stores)


# ----------------------------------------------------------------------
# Edge timestamps
# ----------------------------------------------------------------------

class TestEdgeTimestampProperties:
    @given(edges_strategy, edges_strategy)
    def test_merge_is_commutative_on_common_index(self, a, b):
        ta, tb = EdgeTimestamp(a), EdgeTimestamp(b)
        common = ta.edges & tb.edges
        left = ta.merged_with(tb)
        right = tb.merged_with(ta)
        for e in common:
            assert left[e] == right[e]

    @given(edges_strategy)
    def test_merge_is_idempotent(self, a):
        ta = EdgeTimestamp(a)
        assert ta.merged_with(ta) == ta

    @given(edges_strategy, edges_strategy)
    def test_merge_dominates_both_inputs_on_common_index(self, a, b):
        ta, tb = EdgeTimestamp(a), EdgeTimestamp(b)
        merged = ta.merged_with(tb)
        assert merged.dominates(ta)
        for e in ta.edges & tb.edges:
            assert merged[e] >= tb[e]

    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        st.data(),
    )
    def test_merge_is_associative_on_shared_index(self, index, data):
        # Associativity of element-wise max holds when the three timestamps
        # share one index set (different index sets intentionally drop
        # counters, which is order-dependent by design).
        def draw_ts():
            return EdgeTimestamp(
                {e: data.draw(st.integers(0, 50)) for e in index}
            )

        ta, tb, tc = draw_ts(), draw_ts(), draw_ts()
        left = ta.merged_with(tb).merged_with(tc)
        right = ta.merged_with(tb.merged_with(tc))
        assert left == right

    @given(edges_strategy, st.lists(st.tuples(st.integers(1, 5), st.integers(1, 5)), max_size=5))
    def test_increment_monotone(self, a, bumps):
        ta = EdgeTimestamp(a)
        bumped = ta.incremented(bumps)
        assert bumped.dominates(ta)
        assert bumped.total() >= ta.total()

    @given(edges_strategy)
    def test_dominates_is_reflexive(self, a):
        ta = EdgeTimestamp(a)
        assert ta.dominates(ta)


class TestVectorTimestampProperties:
    @given(st.dictionaries(st.integers(1, 6), st.integers(0, 100), min_size=1))
    def test_merge_idempotent_and_dominating(self, counters):
        v = VectorTimestamp(counters)
        assert v.merged_with(v) == v
        assert v.dominates(v)

    @given(
        st.dictionaries(st.integers(1, 6), st.integers(0, 100), min_size=1),
        st.dictionaries(st.integers(1, 6), st.integers(0, 100), min_size=1),
    )
    def test_merge_commutative(self, a, b):
        va, vb = VectorTimestamp(a), VectorTimestamp(b)
        assert va.merged_with(vb) == vb.merged_with(va)


# ----------------------------------------------------------------------
# Share graphs and timestamp graphs
# ----------------------------------------------------------------------

class TestGraphProperties:
    @given(placements())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_share_graph_edges_symmetric(self, placement):
        graph = ShareGraph.from_placement(placement)
        for (a, b) in graph.edges:
            assert (b, a) in graph.edges
            assert graph.shared_registers(a, b) == graph.shared_registers(b, a)

    @given(placements(max_replicas=5, max_registers=6))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_timestamp_graph_between_incident_and_all_edges(self, placement):
        graph = ShareGraph.from_placement(placement)
        for rid in graph.replica_ids:
            edges = timestamp_edges(graph, rid)
            assert graph.incident_edges(rid) <= edges <= graph.edges

    @given(placements(max_replicas=5, max_registers=6))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_compression_never_increases_counters(self, placement):
        graph = ShareGraph.from_placement(placement)
        report = compression_report(graph)
        for rid in graph.replica_ids:
            assert 0 <= report.compressed[rid] <= report.uncompressed[rid]


# ----------------------------------------------------------------------
# End-to-end: random topologies + random workloads stay causally consistent
# ----------------------------------------------------------------------

class TestProtocolProperties:
    @given(placements(max_replicas=5, max_registers=6), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_executions_are_causally_consistent(self, placement, seed):
        graph = ShareGraph.from_placement(placement)
        cluster = Cluster(graph, delay_model=UniformDelay(1, 20), seed=seed)
        workload = uniform_workload(graph, 40, seed=seed)
        result = run_workload(cluster, workload, interleave_steps=1)
        assert result.consistent

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_simulation_is_deterministic(self, seed):
        from repro.sim.topologies import figure5_placement

        graph = ShareGraph.from_placement(figure5_placement())

        def run():
            cluster = Cluster(graph, delay_model=UniformDelay(1, 20), seed=seed)
            result = run_workload(cluster, uniform_workload(graph, 30, seed=seed))
            return (
                result.messages_sent,
                result.metadata_counters_sent,
                [tuple(r.applied[i].uid for i in range(len(r.applied)))
                 for r in cluster.replicas.values()],
            )

        assert run() == run()
