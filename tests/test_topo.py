"""Topology import: golden datasets parse, malformed inputs raise.

The bundled datasets are golden files: their node/link/region counts,
connectivity and strictly positive latencies are pinned here, and every
degenerate input — malformed rows, self-loops, duplicate links,
non-positive latencies, disconnected graphs — must raise a typed
:class:`~repro.core.errors.TopologyError` instead of producing a silently
wrong latency matrix.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.delays import DuplicatingDelay, LossyDelay, PerChannelDelay
from repro.topo import (
    LatencyDelayModel,
    Link,
    Topology,
    TopologyError,
    catalog,
    geant_like,
    geo_regions,
    rocketfuel_like,
)


class TestGoldenDatasets:
    def test_geant_like_shape(self):
        topo = geant_like()
        assert topo.name == "geant-like"
        assert topo.num_nodes == 22
        assert topo.num_links == 36
        assert topo.region_names == (
            "central", "east", "iberia", "north", "south", "west",
        )
        assert topo.is_connected()

    def test_rocketfuel_like_shape(self):
        topo = rocketfuel_like()
        assert topo.num_nodes == 12
        assert topo.num_links == 18
        assert topo.region_names == ("central", "east", "west")
        assert topo.is_connected()

    @pytest.mark.parametrize("name", sorted(catalog()))
    def test_catalog_latencies_strictly_positive(self, name):
        topo = catalog()[name]()
        assert topo.is_connected()
        for link in topo.links:
            assert link.latency_ms > 0.0
        # Shortest paths are consistent: symmetric, zero on the diagonal,
        # and never beat the direct link they could take.
        for link in topo.links:
            assert topo.path_latency(link.u, link.v) <= link.latency_ms
        some = topo.nodes[0]
        assert topo.path_latency(some, some) == 0.0
        other = topo.nodes[-1]
        assert topo.path_latency(some, other) == topo.path_latency(other, some)

    def test_geo_regions_follows_icarus_convention(self):
        topo = geo_regions(3, 4, internal_ms=2.0, external_ms=34.0)
        assert topo.num_nodes == 12
        assert topo.region_names == ("r0", "r1", "r2")
        assert topo.region_of("r1_n2") == "r1"
        # Intra-region links are 2 ms, region-joining links 34 ms.
        assert topo.link_latency("r0_n0", "r0_n1") == 2.0
        assert topo.link_latency("r0_n0", "r1_n0") == 34.0
        # Crossing a region always pays the external link.
        assert topo.path_latency("r0_n1", "r1_n1") == 2.0 + 34.0 + 2.0

    def test_two_region_generator_has_single_joining_link(self):
        topo = geo_regions(2, 3)
        joins = [
            link for link in topo.links
            if topo.region_of(link.u) != topo.region_of(link.v)
        ]
        assert len(joins) == 1


class TestDegenerateInputs:
    def test_malformed_link_row_raises_with_line_number(self):
        with pytest.raises(TopologyError, match="bad:2"):
            Topology.parse("a b 1.0\na b c d\n", name="bad")

    def test_non_numeric_latency_raises(self):
        with pytest.raises(TopologyError, match="not a number"):
            Topology.parse("a b fast\n")

    def test_malformed_node_row_raises(self):
        with pytest.raises(TopologyError, match="node rows"):
            Topology.parse("node x\nx y 1.0\n")

    def test_self_loop_raises(self):
        with pytest.raises(TopologyError, match="self-loop"):
            Topology.parse("a a 1.0\n")

    def test_duplicate_link_raises_either_orientation(self):
        with pytest.raises(TopologyError, match="duplicate link"):
            Topology.parse("a b 1.0\nb a 2.0\n")

    @pytest.mark.parametrize("latency", ["0", "-3.5", "inf", "nan"])
    def test_non_positive_or_non_finite_latency_raises(self, latency):
        with pytest.raises(TopologyError, match="latency"):
            Topology.parse(f"a b {latency}\n")

    def test_disconnected_graph_raises(self):
        with pytest.raises(TopologyError, match="disconnected"):
            Topology.parse("a b 1.0\nc d 1.0\n")

    def test_isolated_declared_node_raises(self):
        with pytest.raises(TopologyError, match="disconnected"):
            Topology.parse("node lonely r0\na b 1.0\n")

    def test_empty_text_raises(self):
        with pytest.raises(TopologyError, match="no nodes"):
            Topology.parse("# only a comment\n")

    def test_link_to_unknown_node_raises_in_constructor(self):
        with pytest.raises(TopologyError, match="undeclared node"):
            Topology(name="t", nodes=("a", "b"), links=(Link("a", "c", 1.0),))

    def test_unknown_node_queries_raise(self):
        topo = Topology.parse("a b 1.0\n")
        with pytest.raises(TopologyError):
            topo.path_latency("a", "zz")
        with pytest.raises(TopologyError):
            topo.region_of("zz")
        with pytest.raises(TopologyError):
            topo.link_latency("a", "a")

    def test_typed_error_is_a_configuration_error(self):
        # Callers catching the library-wide hierarchy see topology
        # failures as configuration mistakes, not crashes.
        assert issubclass(TopologyError, ConfigurationError)

    def test_single_node_topology_is_legal(self):
        topo = Topology.parse("node only r0\n")
        assert topo.num_nodes == 1
        assert topo.is_connected()
        assert topo.diameter_ms() == 0.0


class TestLatencyDelayModel:
    def test_delays_come_from_shortest_paths(self):
        topo = geant_like()
        model = LatencyDelayModel(
            topo, {1: "vienna", 2: "bratislava", 3: "lisbon"}
        )
        assert model.channel_base((1, 2)) == topo.path_latency(
            "vienna", "bratislava"
        )
        assert model.channel_base((1, 3)) == topo.path_latency(
            "vienna", "lisbon"
        )

    def test_co_hosted_replicas_pay_loopback_not_zero(self):
        topo = geo_regions(2, 2)
        model = LatencyDelayModel(topo, {1: "r0_n0", 2: "r0_n0"})
        assert model.channel_base((1, 2)) == pytest.approx(0.1)

    def test_unknown_assignment_node_raises(self):
        with pytest.raises(TopologyError, match="unknown node"):
            LatencyDelayModel(geo_regions(2, 2), {1: "nowhere"})

    def test_unassigned_channel_raises(self):
        model = LatencyDelayModel(geo_regions(2, 2), {1: "r0_n0", 2: "r1_n0"})
        with pytest.raises(TopologyError, match="unassigned endpoint"):
            model.channel_base((1, 9))

    def test_jitter_is_bounded_and_seeded(self):
        topo = geo_regions(2, 2)
        model = LatencyDelayModel(topo, {1: "r0_n0", 2: "r1_n0"}, jitter=0.5)
        message = type("M", (), {"sender": 1, "destination": 2})()
        base = model.channel_base((1, 2))
        first = [model.delay(message, random.Random(7)) for _ in range(20)]
        second = [model.delay(message, random.Random(7)) for _ in range(20)]
        assert first == second
        for value in first:
            assert base <= value <= base * 1.5


class TestWrapperComposition:
    """Regression: fate wrappers must compose with heterogeneous delays.

    The wrappers used to be interrogated as if the wrapped model had one
    scalar base delay; stacked over a per-channel model they must forward
    both the per-message delay and the per-channel base introspection.
    """

    def _message(self, sender, destination):
        return type("M", (), {"sender": sender, "destination": destination})()

    def test_fate_wrappers_preserve_per_channel_delays(self):
        inner = PerChannelDelay(base={(1, 2): 3.0, (2, 1): 7.0}, default=1.0)
        stacked = DuplicatingDelay(
            inner=LossyDelay(inner=inner, drop_probability=0.5),
            duplicate_probability=0.5,
        )
        rng = random.Random(0)
        assert stacked.delay(self._message(1, 2), rng) == 3.0
        assert stacked.delay(self._message(2, 1), rng) == 7.0
        assert stacked.delay(self._message(1, 3), rng) == 1.0
        assert stacked.channel_base((1, 2)) == 3.0
        assert stacked.channel_base((2, 1)) == 7.0
        assert stacked.channel_base((9, 9)) == 1.0

    def test_fate_wrappers_forward_topology_latencies(self):
        topo = geo_regions(2, 2)
        inner = LatencyDelayModel(topo, {1: "r0_n0", 2: "r1_n0", 3: "r0_n1"})
        lossy = LossyDelay(inner=inner, drop_probability=0.25)
        assert lossy.channel_base((1, 2)) == topo.path_latency("r0_n0", "r1_n0")
        assert lossy.channel_base((1, 3)) == topo.path_latency("r0_n0", "r0_n1")
        rng = random.Random(3)
        assert lossy.delay(self._message(1, 2), rng) == 34.0
        assert lossy.delay(self._message(1, 3), rng) == 2.0
